//! # bench — the benchmark harness for the SIGMOD 2014 evaluation
//!
//! This crate regenerates the paper's experiments:
//!
//! * **Figure 10** — the flat queries QF1–QF6, comparing query shredding,
//!   loop-lifting and Links' default flat evaluation while scaling the number
//!   of departments;
//! * **Figure 11** — the nested queries Q1–Q6, comparing query shredding and
//!   loop-lifting over the same scaling sweep;
//! * **Appendix A** — the quadratic blow-up of Van den Bussche's simulation
//!   on multiset unions.
//!
//! Each system is a [`Shredder`] session over the same generated database
//! (sharing one loaded SQL engine), with the plan cache disabled so every
//! measurement covers the full translate → execute → stitch path, exactly
//! what the paper reports. The benches under `benches/` measure the same
//! workloads at a fixed scale; the `experiments` binary prints the full
//! scaling tables in the same layout as the paper's figures.

#![forbid(unsafe_code)]

use baselines::{FlatDefaultBackend, LoopLiftBackend};
use datagen::{generate, organisation_schema, OrgConfig};
use nrc::schema::{Database, Schema};
use nrc::term::Term;
use nrc::value::Value;
use shredding::error::ShredError;
use shredding::session::Shredder;
use sqlengine::Engine;
use std::time::{Duration, Instant};

/// The systems compared by the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Query shredding (this paper).
    Shredding,
    /// The loop-lifting baseline (Ferry / Ulrich).
    LoopLifting,
    /// Links' default flat query evaluation (flat queries only).
    Default,
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            System::Shredding => write!(f, "shredding"),
            System::LoopLifting => write!(f, "loop-lifting"),
            System::Default => write!(f, "default"),
        }
    }
}

/// A prepared benchmark instance: one `Shredder` session per compared
/// system, all over the same generated database and sharing one loaded
/// engine.
pub struct Instance {
    pub schema: Schema,
    pub departments: usize,
    shredding: Shredder,
    looplift: Shredder,
    flat: Shredder,
}

impl Instance {
    /// Generate an instance with the paper's distributions at a given number
    /// of departments (scaled-down employee counts keep the in-process sweep
    /// fast; pass a custom config for the full-size data).
    pub fn at_scale(departments: usize) -> Instance {
        Instance::with_config(OrgConfig {
            departments,
            employees_per_department: 20,
            contacts_per_department: 5,
            ..OrgConfig::default()
        })
    }

    /// Generate an instance from an explicit configuration.
    pub fn with_config(config: OrgConfig) -> Instance {
        let schema = organisation_schema();
        let db = generate(&config);
        let shredding = Shredder::builder()
            .database(db.clone())
            .without_plan_cache()
            .build()
            .expect("generated data always configures a session");
        // The baseline sessions run over the same loaded engine (shared, not
        // copied) and need no database of their own: the reference answers
        // come from the shredding session's oracle.
        let engine = shredding
            .shared_engine()
            .expect("generated data always loads into the engine");
        let looplift = Shredder::builder()
            .schema(schema.clone())
            .engine(engine.clone())
            .backend(Box::new(LoopLiftBackend))
            .without_plan_cache()
            .build()
            .expect("generated data always configures a session");
        let flat = Shredder::builder()
            .schema(schema.clone())
            .engine(engine)
            .backend(Box::new(FlatDefaultBackend))
            .without_plan_cache()
            .build()
            .expect("generated data always configures a session");
        Instance {
            schema,
            departments: config.departments,
            shredding,
            looplift,
            flat,
        }
    }

    /// The generated database (owned by the shredding session).
    pub fn db(&self) -> &Database {
        self.shredding
            .database()
            .expect("the shredding session owns the database")
    }

    /// The session configured for a given system.
    pub fn session(&self, system: System) -> &Shredder {
        match system {
            System::Shredding => &self.shredding,
            System::LoopLifting => &self.looplift,
            System::Default => &self.flat,
        }
    }

    /// The SQL engine shared by all three sessions.
    pub fn engine(&self) -> &Engine {
        self.shredding
            .engine()
            .expect("the engine was built eagerly")
    }
}

/// One measurement: total time to translate the query, evaluate the resulting
/// SQL and stitch the results (exactly what the paper reports), plus the size
/// of the produced value as a sanity check.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub system: System,
    pub query: String,
    pub departments: usize,
    pub elapsed: Duration,
    pub result_scalars: usize,
    pub error: Option<String>,
}

impl Measurement {
    /// Elapsed time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1000.0
    }
}

/// Run one query under one system and measure the end-to-end time. The
/// sessions have no plan cache, so every run pays the full translation.
pub fn measure(system: System, name: &str, query: &Term, instance: &Instance) -> Measurement {
    let session = instance.session(system);
    let start = Instant::now();
    let outcome: Result<Value, ShredError> = session.run(query);
    let elapsed = start.elapsed();
    match outcome {
        Ok(value) => Measurement {
            system,
            query: name.to_string(),
            departments: instance.departments,
            elapsed,
            result_scalars: value.scalar_count(),
            error: None,
        },
        Err(e) => Measurement {
            system,
            query: name.to_string(),
            departments: instance.departments,
            elapsed,
            result_scalars: 0,
            error: Some(e.to_string()),
        },
    }
}

/// Run a query under a system `runs` times and keep the median, as in the
/// paper ("the times are medians of 5 runs").
pub fn measure_median(
    system: System,
    name: &str,
    query: &Term,
    instance: &Instance,
    runs: usize,
) -> Measurement {
    let mut measurements: Vec<Measurement> = (0..runs.max(1))
        .map(|_| measure(system, name, query, instance))
        .collect();
    measurements.sort_by_key(|m| m.elapsed);
    measurements.swap_remove(measurements.len() / 2)
}

/// Verify that a system's answer matches the nested reference semantics on an
/// instance (used by the harness's `--check` mode and the integration tests).
pub fn check_against_reference(
    system: System,
    query: &Term,
    instance: &Instance,
) -> Result<(), String> {
    // The shredding session owns the database, so it provides the oracle.
    let reference = instance
        .session(System::Shredding)
        .oracle(query)
        .map_err(|e| e.to_string())?;
    let value = instance
        .session(system)
        .run(query)
        .map_err(|e| e.to_string())?;
    if value.multiset_eq(&reference) {
        Ok(())
    } else {
        Err("result differs from the nested reference semantics".to_string())
    }
}

// ---------------------------------------------------------------------------
// Interpreter vs. vectorized executor (the PR 2 engine-level comparison)
// ---------------------------------------------------------------------------

/// One engine-level comparison: the same compiled SQL stages executed by the
/// row-at-a-time interpreter and by the vectorized executor (pre-compiled
/// physical plans), median total time over the stages.
#[derive(Debug, Clone)]
pub struct VexecComparison {
    pub query: String,
    /// `"flat"` (QF1–QF6) or `"nested"` (Q1–Q6).
    pub kind: &'static str,
    /// Number of flat SQL stages the query shreds into.
    pub stages: usize,
    /// Median time to plan every stage against live storage.
    pub plan_ms: f64,
    /// Median time to run every stage on the interpreter.
    pub interpreter_ms: f64,
    /// Median time to run every stage's pre-compiled plan vectorized.
    pub vectorized_ms: f64,
}

impl VexecComparison {
    /// Interpreter time over vectorized time (>1 means vectorized wins).
    pub fn speedup(&self) -> f64 {
        if self.vectorized_ms > 0.0 {
            self.interpreter_ms / self.vectorized_ms
        } else {
            f64::INFINITY
        }
    }
}

fn median_ms<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    // Warm up once (as micro::run does) so one-time lazy costs — e.g. the
    // first columnar transposition of a table — don't land in the median.
    std::hint::black_box(f());
    let hist = obs::Histogram::new();
    for _ in 0..runs.max(1) {
        hist.time(|| std::hint::black_box(f()));
    }
    hist.quantile(0.5) as f64 / 1e6
}

/// Compare the interpreter and the vectorized executor on every benchmark
/// query's compiled SQL stages, over the instance's loaded engine.
pub fn compare_vectorized(instance: &Instance, runs: usize) -> Vec<VexecComparison> {
    let engine = instance.engine();
    let suites: [(&'static str, Vec<(&'static str, Term)>); 2] = [
        ("flat", datagen::queries::flat_queries()),
        ("nested", datagen::queries::nested_queries()),
    ];
    let mut out = Vec::new();
    for (kind, queries) in suites {
        for (name, q) in queries {
            let compiled = shredding::pipeline::compile(&q, &instance.schema)
                .expect("benchmark queries always compile");
            let stages: Vec<_> = compiled.stages.annotations().into_iter().collect();
            let plan_ms = median_ms(runs, || {
                stages
                    .iter()
                    .map(|s| engine.prepare(&s.sql).expect("stage SQL always plans"))
                    .collect::<Vec<_>>()
            });
            let interpreter_ms = median_ms(runs, || {
                stages
                    .iter()
                    .map(|s| {
                        engine
                            .execute_interpreted(&s.sql)
                            .expect("stage SQL always executes")
                    })
                    .collect::<Vec<_>>()
            });
            let vectorized_ms = median_ms(runs, || {
                stages
                    .iter()
                    .map(|s| {
                        engine
                            .execute_plan(&s.plan)
                            .expect("stage plans always execute")
                    })
                    .collect::<Vec<_>>()
            });
            out.push(VexecComparison {
                query: name.to_string(),
                kind,
                stages: stages.len(),
                plan_ms,
                interpreter_ms,
                vectorized_ms,
            });
        }
    }
    out
}

/// Render the comparison as the machine-readable `BENCH_pr2.json` document
/// (hand-rolled: the workspace has no serde).
pub fn vexec_report_json(instance: &Instance, runs: usize, rows: &[VexecComparison]) -> String {
    // `speedup()` is infinite when the vectorized time rounds to zero;
    // JSON has no `inf` token, so emit `null` for non-finite values.
    fn f(ms: f64) -> String {
        if ms.is_finite() {
            format!("{:.4}", ms)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"interpreter-vs-vectorized\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"total_rows\": {},\n  \"runs\": {},\n",
        instance.departments,
        instance.engine().storage().total_rows(),
        runs
    ));
    out.push_str("  \"queries\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"stages\": {}, \
             \"plan_ms\": {}, \"interpreter_ms\": {}, \"vectorized_ms\": {}, \
             \"speedup\": {}}}{}\n",
            row.query,
            row.kind,
            row.stages,
            f(row.plan_ms),
            f(row.interpreter_ms),
            f(row.vectorized_ms),
            f(row.speedup()),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Row-path vs. columnar result assembly (the PR 5 decode + stitch comparison)
// ---------------------------------------------------------------------------

/// One result-assembly comparison: the same per-stage engine output decoded
/// and stitched back into a nested value over the two result paths —
///
/// * **row path** — transpose each stage's columnar engine result into rows
///   (the column→row converter), decode one `FlatValue` tree per row, group
///   by cloning-free moves, stitch with the row-at-a-time oracle;
/// * **columnar path** — group each stage by its `(oidx_tag, oidx_ord)`
///   columns over a sorted row permutation and materialise the nested value
///   straight out of the `Arc`-shared columns.
///
/// Engine execution is excluded: each stage's plan runs once up front and
/// both paths decode clones of the same `Arc`-shared [`sqlengine::ColumnarResult`]s
/// (cloning is a refcount bump, identical on both sides).
#[derive(Debug, Clone)]
pub struct StitchComparison {
    pub query: String,
    /// `"flat"` (QF1–QF6) or `"nested"` (Q1–Q6).
    pub kind: &'static str,
    /// Number of flat SQL stages the query shreds into.
    pub stages: usize,
    /// Total rows decoded across all stages.
    pub rows: usize,
    /// Median time for transpose + row decode + row-at-a-time stitch.
    pub row_path_ms: f64,
    /// Median time for columnar decode (index grouping) + columnar stitch.
    pub columnar_ms: f64,
}

impl StitchComparison {
    /// Row-path time over columnar time (>1 means the columnar path wins).
    pub fn speedup(&self) -> f64 {
        if self.columnar_ms > 0.0 {
            self.row_path_ms / self.columnar_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Compare the row and columnar result-assembly paths on every benchmark
/// query, over the instance's loaded engine. Both paths are verified against
/// the nested reference semantics before being timed.
pub fn compare_stitch(instance: &Instance, runs: usize) -> Vec<StitchComparison> {
    use shredding::flatten::ColumnarStage;
    use shredding::semantics::IndexScheme;
    use shredding::shred::Package;
    use shredding::stitch::{stitch, stitch_rows};

    let engine = instance.engine();
    let reference_session = instance.session(System::Shredding);
    let suites: [(&'static str, Vec<(&'static str, Term)>); 2] = [
        ("flat", datagen::queries::flat_queries()),
        ("nested", datagen::queries::nested_queries()),
    ];
    let mut out = Vec::new();
    for (kind, queries) in suites {
        for (name, q) in queries {
            let compiled = shredding::pipeline::compile(&q, &instance.schema)
                .expect("benchmark queries always compile");
            // Run every stage once; both paths decode the same shared
            // columnar results.
            let results = compiled
                .stages
                .try_map(&mut |stage: &shredding::pipeline::QueryStage| {
                    engine
                        .execute_plan(&stage.plan)
                        .map(|r| (stage.layout.clone(), r))
                })
                .expect("benchmark stages always execute");
            let rows = results.annotations().iter().map(|(_, r)| r.len()).sum();

            let row_path = || {
                let decoded = results
                    .try_map(&mut |(layout, result)| {
                        let rs = result.clone().into_result_set();
                        layout.decode(&rs)
                    })
                    .expect("row decode succeeds");
                stitch_rows(decoded, IndexScheme::Flat).expect("row stitch succeeds")
            };
            let columnar = || {
                let decoded: Package<ColumnarStage> = results
                    .try_map(&mut |(layout, result)| {
                        ColumnarStage::decode(layout.clone(), result.clone())
                    })
                    .expect("columnar decode succeeds");
                stitch(decoded).expect("columnar stitch succeeds")
            };

            // Correctness before speed: both paths must agree with N⟦−⟧.
            let oracle = reference_session
                .oracle(&q)
                .expect("benchmark queries evaluate");
            assert!(
                row_path().multiset_eq(&oracle),
                "{}: row-path result assembly disagrees with the oracle",
                name
            );
            assert!(
                columnar().multiset_eq(&oracle),
                "{}: columnar result assembly disagrees with the oracle",
                name
            );

            let row_path_ms = median_ms(runs, row_path);
            let columnar_ms = median_ms(runs, columnar);
            out.push(StitchComparison {
                query: name.to_string(),
                kind,
                stages: compiled.query_count(),
                rows,
                row_path_ms,
                columnar_ms,
            });
        }
    }
    out
}

/// Render the result-assembly comparison as the machine-readable
/// `BENCH_pr5.json` document (hand-rolled: the workspace has no serde).
pub fn stitch_report_json(instance: &Instance, runs: usize, rows: &[StitchComparison]) -> String {
    fn f(ms: f64) -> String {
        if ms.is_finite() {
            format!("{:.4}", ms)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"columnar-result-assembly\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"total_rows\": {},\n  \"runs\": {},\n",
        instance.departments,
        instance.engine().storage().total_rows(),
        runs
    ));
    out.push_str("  \"queries\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"stages\": {}, \"rows\": {}, \
             \"row_path_ms\": {}, \"columnar_ms\": {}, \"speedup\": {}}}{}\n",
            row.query,
            row.kind,
            row.stages,
            row.rows,
            f(row.row_path_ms),
            f(row.columnar_ms),
            f(row.speedup()),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Parameterized prepared queries (the PR 3 bind-variable comparison)
// ---------------------------------------------------------------------------

/// One parametric-workload comparison: a single prepared shape re-executed
/// with `bindings` distinct parameter bindings versus replanning the query
/// once per constant, plus the plan-cache hit rate of the equivalent ad-hoc
/// (auto-parameterized) workload.
#[derive(Debug, Clone)]
pub struct ParamsComparison {
    pub workload: String,
    /// Number of distinct bindings executed.
    pub bindings: usize,
    /// Median time of one full compile (normalise → shred → SQL → plan).
    pub prepare_ms: f64,
    /// Median per-execution time of `execute_bound` on the single prepared
    /// shape.
    pub bound_per_exec_ms: f64,
    /// Median per-execution time of the replan path (compile + execute per
    /// constant).
    pub replan_per_exec_ms: f64,
    /// Plan-cache hit rate of the ad-hoc workload (N `run` calls whose
    /// constants differ), under auto-parameterization.
    pub cache_hit_rate: f64,
    /// Engine-side plans built while re-executing the prepared shape
    /// (must be zero: binding never reaches the planner).
    pub engine_plans_built_during_bound: u64,
}

impl ParamsComparison {
    /// Replan time over bound-execution time (>1 means binding wins).
    pub fn speedup(&self) -> f64 {
        if self.bound_per_exec_ms > 0.0 {
            self.replan_per_exec_ms / self.bound_per_exec_ms
        } else {
            f64::INFINITY
        }
    }
}

/// One parametric workload: a parameterized term plus a generator producing
/// the i-th binding set and the equivalent constant-inlined term. The
/// generators are `Send + Sync` so worker threads can draw bindings from a
/// shared workload table.
struct ParamWorkload {
    name: &'static str,
    term: Term,
    bind: Box<dyn Fn(usize) -> shredding::session::Params + Send + Sync>,
    inline: Box<dyn Fn(usize) -> Term + Send + Sync>,
}

fn param_workloads(departments: usize) -> Vec<ParamWorkload> {
    use nrc::builder::*;
    let dept_name = move |i: usize| format!("dept_{:05}", i % departments.max(1));
    let cutoff = |i: usize| (i as i64 % 7) * 10_000;

    let flat = |dpt: Term, cut: Term| {
        for_where(
            "e",
            table("employees"),
            and(
                eq(project(var("e"), "dept"), dpt),
                gt(project(var("e"), "salary"), cut),
            ),
            singleton(record(vec![("name", project(var("e"), "name"))])),
        )
    };
    let nested = |dpt: Term| {
        for_where(
            "e",
            table("employees"),
            eq(project(var("e"), "dept"), dpt),
            singleton(record(vec![
                ("name", project(var("e"), "name")),
                (
                    "tasks",
                    for_where(
                        "t",
                        table("tasks"),
                        eq(project(var("t"), "employee"), project(var("e"), "name")),
                        singleton(project(var("t"), "task")),
                    ),
                ),
            ])),
        )
    };
    let anti = |cut: Term| {
        for_where(
            "d",
            table("departments"),
            is_empty(for_where(
                "e",
                table("employees"),
                and(
                    eq(project(var("e"), "dept"), project(var("d"), "name")),
                    gt(project(var("e"), "salary"), cut),
                ),
                singleton(var("e")),
            )),
            singleton(project(var("d"), "name")),
        )
    };

    vec![
        ParamWorkload {
            name: "flat-filter",
            term: flat(string_param("dpt"), int_param("cutoff")),
            bind: Box::new(move |i| {
                shredding::session::Params::new()
                    .bind("dpt", dept_name(i).as_str())
                    .bind("cutoff", cutoff(i))
            }),
            inline: Box::new(move |i| flat(string(&dept_name(i)), int(cutoff(i)))),
        },
        ParamWorkload {
            name: "nested-tasks",
            term: nested(string_param("dpt")),
            bind: Box::new(move |i| {
                shredding::session::Params::new().bind("dpt", dept_name(i).as_str())
            }),
            inline: Box::new(move |i| nested(string(&dept_name(i)))),
        },
        ParamWorkload {
            name: "anti-join",
            term: anti(int_param("cutoff")),
            bind: Box::new(move |i| shredding::session::Params::new().bind("cutoff", cutoff(i))),
            inline: Box::new(move |i| anti(int(cutoff(i)))),
        },
    ]
}

/// Compare bound re-execution of one prepared shape against replanning per
/// constant, over `bindings` distinct binding sets, for each parametric
/// workload. Also reports the plan-cache hit rate of the equivalent ad-hoc
/// workload (the auto-parameterization path) and verifies that bound
/// execution agrees with the reference semantics on every binding.
pub fn compare_params(instance: &Instance, bindings: usize, runs: usize) -> Vec<ParamsComparison> {
    let db = instance.db().clone();
    let engine = instance
        .session(System::Shredding)
        .shared_engine()
        .expect("the instance's engine is loaded");
    let bindings = bindings.max(1);
    let mut out = Vec::new();
    for workload in param_workloads(instance.departments) {
        // The bound path: one prepared shape, N bindings.
        let session = Shredder::builder()
            .database(db.clone())
            .engine(engine.clone())
            .build()
            .expect("generated data always configures a session");
        let prepare_ms = median_ms(runs, || session.prepare_uncached(&workload.term).unwrap());
        let prepared = session.prepare(&workload.term).expect("workload prepares");
        // Correctness: every binding must agree with the reference semantics.
        for i in 0..bindings {
            let params = (workload.bind)(i);
            let bound = session.execute_bound(&prepared, &params).unwrap();
            let reference = session.oracle_bound(&workload.term, &params).unwrap();
            assert!(
                bound.multiset_eq(&reference),
                "{}: bound execution disagrees with the oracle on binding {}",
                workload.name,
                i
            );
        }
        let plans_before = engine.plans_built();
        let bound_total_ms = median_ms(runs, || {
            for i in 0..bindings {
                std::hint::black_box(
                    session
                        .execute_bound(&prepared, &(workload.bind)(i))
                        .unwrap(),
                );
            }
        });
        let engine_plans_built_during_bound = engine.plans_built() - plans_before;

        // The replan path: compile + execute once per constant.
        let replan = Shredder::builder()
            .database(db.clone())
            .engine(engine.clone())
            .without_plan_cache()
            .build()
            .expect("generated data always configures a session");
        let replan_total_ms = median_ms(runs, || {
            for i in 0..bindings {
                let term = (workload.inline)(i);
                let prepared = replan.prepare_uncached(&term).unwrap();
                std::hint::black_box(replan.execute(&prepared).unwrap());
            }
        });

        // The ad-hoc path: N `run` calls whose constants differ share one
        // plan thanks to auto-parameterization; report the hit rate.
        let adhoc = Shredder::builder()
            .database(db.clone())
            .engine(engine.clone())
            .build()
            .expect("generated data always configures a session");
        for i in 0..bindings {
            adhoc.run(&(workload.inline)(i)).unwrap();
        }
        let stats = adhoc.cache_stats();
        let cache_hit_rate = if stats.hits + stats.misses == 0 {
            0.0
        } else {
            stats.hits as f64 / (stats.hits + stats.misses) as f64
        };

        out.push(ParamsComparison {
            workload: workload.name.to_string(),
            bindings,
            prepare_ms,
            bound_per_exec_ms: bound_total_ms / bindings as f64,
            replan_per_exec_ms: replan_total_ms / bindings as f64,
            cache_hit_rate,
            engine_plans_built_during_bound,
        });
    }
    out
}

/// Render the parametric comparison as the machine-readable `BENCH_pr3.json`
/// document (hand-rolled: the workspace has no serde).
pub fn params_report_json(instance: &Instance, runs: usize, rows: &[ParamsComparison]) -> String {
    fn f(x: f64) -> String {
        if x.is_finite() {
            format!("{:.4}", x)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"parameterized-prepared-queries\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"runs\": {},\n",
        instance.departments, runs
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"bindings\": {}, \"prepare_ms\": {}, \
             \"bound_per_exec_ms\": {}, \"replan_per_exec_ms\": {}, \"speedup\": {}, \
             \"cache_hit_rate\": {}, \"engine_plans_built_during_bound\": {}}}{}\n",
            row.workload,
            row.bindings,
            f(row.prepare_ms),
            f(row.bound_per_exec_ms),
            f(row.replan_per_exec_ms),
            f(row.speedup()),
            f(row.cache_hit_rate),
            row.engine_plans_built_during_bound,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Concurrent throughput (the PR 4 multi-threaded scaling workload)
// ---------------------------------------------------------------------------

/// Throughput measured at one thread count: `threads` worker threads share
/// one cloned [`Shredder`] (same plan cache, same loaded engine) and each
/// performs `execs_per_thread` bound executions of the prepared parametric
/// workloads via `run_bound` — prepare-from-cache plus bound execution, the
/// hot path of a parametric server workload.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Number of worker threads sharing the session.
    pub threads: usize,
    /// Total bound executions across all threads.
    pub total_execs: usize,
    /// Wall-clock time for the whole fan-out.
    pub elapsed_ms: f64,
    /// Total executions divided by wall-clock seconds.
    pub execs_per_sec: f64,
}

/// The full concurrency report: one [`ThroughputPoint`] per requested thread
/// count plus the shared-state invariants the run must uphold (no engine-side
/// re-planning, near-perfect plan-cache hit rate).
#[derive(Debug, Clone)]
pub struct ConcurrencyReport {
    /// Names of the parametric workloads driven.
    pub workloads: Vec<String>,
    /// Bound executions per thread at every thread count.
    pub execs_per_thread: usize,
    /// `std::thread::available_parallelism()` of the measuring host — thread
    /// scaling can only be expected up to this many threads.
    pub available_parallelism: usize,
    /// One measurement per requested thread count.
    pub points: Vec<ThroughputPoint>,
    /// Plan-cache hit rate across every `run_bound` of the whole sweep
    /// (the first prepare of each workload is the only legitimate miss).
    pub cache_hit_rate: f64,
    /// Engine-side plans built while the sweep ran (must be zero: prepared
    /// shapes are planned once, before the measured phase).
    pub engine_plans_built_during_run: u64,
}

impl ConcurrencyReport {
    /// Throughput at `threads` threads over throughput at one thread.
    pub fn speedup_at(&self, threads: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.threads == 1)?;
        let at = self.points.iter().find(|p| p.threads == threads)?;
        if base.execs_per_sec > 0.0 {
            Some(at.execs_per_sec / base.execs_per_sec)
        } else {
            None
        }
    }
}

/// Drive one shared `Shredder` from 1..=N worker threads and measure bound
/// execution throughput at each thread count.
///
/// All threads share a *single* session (cloning a `Shredder` is an `Arc`
/// bump — every clone sees the same plan cache and engine). Each iteration
/// performs `run_bound`: an auto-parameterized prepare answered by the
/// shared plan cache, then a bound execution of the cached immutable plan
/// against shared storage. Results are verified against the reference
/// semantics once per workload before the timed sweep.
///
/// Each thread count is measured `runs` times and the best
/// (highest-throughput) repeat is kept, which makes the CI scaling gate
/// robust against scheduler hiccups in any single timing window.
pub fn measure_concurrency_best_of(
    instance: &Instance,
    thread_counts: &[usize],
    execs_per_thread: usize,
    runs: usize,
) -> ConcurrencyReport {
    let engine = instance
        .session(System::Shredding)
        .shared_engine()
        .expect("the instance's engine is loaded");
    let session = Shredder::builder()
        .database(instance.db().clone())
        .engine(engine.clone())
        .build()
        .expect("generated data always configures a session");
    let workloads = param_workloads(instance.departments);
    let execs_per_thread = execs_per_thread.max(1);

    // Warm-up and correctness: prepare every workload once (the only cache
    // misses of the run) and check a binding against the oracle.
    for workload in &workloads {
        let prepared = session.prepare(&workload.term).expect("workload prepares");
        let params = (workload.bind)(0);
        let bound = session.execute_bound(&prepared, &params).unwrap();
        let reference = session.oracle_bound(&workload.term, &params).unwrap();
        assert!(
            bound.multiset_eq(&reference),
            "{}: bound execution disagrees with the oracle",
            workload.name
        );
    }

    let stats_before = session.cache_stats();
    let plans_before = engine.plans_built();
    let runs = runs.max(1);
    let mut points = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let threads = threads.max(1);
        let mut best: Option<ThroughputPoint> = None;
        for _ in 0..runs {
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let session = session.clone();
                    let workloads = &workloads;
                    scope.spawn(move || {
                        for i in 0..execs_per_thread {
                            let workload = &workloads[i % workloads.len()];
                            let params = (workload.bind)(t * execs_per_thread + i);
                            std::hint::black_box(
                                session
                                    .run_bound(&workload.term, &params)
                                    .expect("bound execution succeeds under concurrency"),
                            );
                        }
                    });
                }
            });
            let elapsed = start.elapsed();
            let total_execs = threads * execs_per_thread;
            let secs = elapsed.as_secs_f64();
            let point = ThroughputPoint {
                threads,
                total_execs,
                elapsed_ms: secs * 1000.0,
                execs_per_sec: if secs > 0.0 {
                    total_execs as f64 / secs
                } else {
                    f64::INFINITY
                },
            };
            if best
                .as_ref()
                .map(|b| point.execs_per_sec > b.execs_per_sec)
                .unwrap_or(true)
            {
                best = Some(point);
            }
        }
        points.push(best.expect("at least one run per thread count"));
    }
    let stats_after = session.cache_stats();
    let hits = stats_after.hits - stats_before.hits;
    let misses = stats_after.misses - stats_before.misses;
    let cache_hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    ConcurrencyReport {
        workloads: workloads.iter().map(|w| w.name.to_string()).collect(),
        execs_per_thread,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        points,
        cache_hit_rate,
        engine_plans_built_during_run: engine.plans_built() - plans_before,
    }
}

/// Drive the shared session once per thread count (single timing window
/// each). Prefer [`measure_concurrency_best_of`] when the result gates CI.
pub fn measure_concurrency(
    instance: &Instance,
    thread_counts: &[usize],
    execs_per_thread: usize,
) -> ConcurrencyReport {
    measure_concurrency_best_of(instance, thread_counts, execs_per_thread, 1)
}

/// Render the concurrency sweep as the machine-readable `BENCH_pr4.json`
/// document (hand-rolled: the workspace has no serde).
pub fn concurrency_report_json(instance: &Instance, report: &ConcurrencyReport) -> String {
    fn f(x: f64) -> String {
        if x.is_finite() {
            format!("{:.4}", x)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"concurrent-throughput\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"execs_per_thread\": {},\n  \"available_parallelism\": {},\n",
        instance.departments, report.execs_per_thread, report.available_parallelism
    ));
    let names: Vec<String> = report
        .workloads
        .iter()
        .map(|w| format!("\"{}\"", w))
        .collect();
    out.push_str(&format!("  \"workloads\": [{}],\n", names.join(", ")));
    out.push_str("  \"threads\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        let speedup = report.speedup_at(p.threads);
        out.push_str(&format!(
            "    {{\"threads\": {}, \"total_execs\": {}, \"elapsed_ms\": {}, \
             \"execs_per_sec\": {}, \"speedup_vs_1_thread\": {}}}{}\n",
            p.threads,
            p.total_execs,
            f(p.elapsed_ms),
            f(p.execs_per_sec),
            speedup.map(f).unwrap_or_else(|| "null".to_string()),
            if i + 1 == report.points.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cache_hit_rate\": {},\n  \"engine_plans_built_during_run\": {}\n",
        f(report.cache_hit_rate),
        report.engine_plans_built_during_run
    ));
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// The static-analysis sweep (PR 6)
// ---------------------------------------------------------------------------

/// One cell of the static-analysis sweep: a benchmark query prepared on one
/// backend under one indexing scheme, with every diagnostic the verifier
/// reported (see `shredding::verify` and the `analysis` crate).
#[derive(Debug, Clone)]
pub struct AnalyzeEntry {
    pub query: &'static str,
    pub backend: &'static str,
    pub scheme: shredding::IndexScheme,
    /// `None` when the backend cannot plan the query at all (e.g. Links'
    /// default flat evaluation on a nested query) — recorded as skipped,
    /// not as a verification failure.
    pub skip_reason: Option<String>,
    pub diagnostics: Vec<shredding::Diagnostic>,
}

impl AnalyzeEntry {
    /// Number of error-severity diagnostics in this cell.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == shredding::Severity::Error)
            .count()
    }
}

/// Run the full static-verification pass over every benchmark query
/// (QF1–QF6 and Q1–Q6) × all six backends × all three indexing schemes.
/// Sessions are built schema-only (`prepare` needs no data) with
/// verification *collection* but not *gating* enabled, so error-severity
/// findings are reported rather than thrown.
pub fn analyze_all() -> Vec<AnalyzeEntry> {
    use baselines::VandenBusscheBackend;
    use shredding::session::{
        NestedOracleBackend, ShreddedMemoryBackend, SqlBackend, SqlEngineBackend,
    };
    use shredding::IndexScheme;

    type BackendFactory = Box<dyn Fn() -> Box<dyn SqlBackend>>;
    let schema = organisation_schema();
    let backends: Vec<(&'static str, BackendFactory)> = vec![
        ("sqlengine", Box::new(|| Box::new(SqlEngineBackend))),
        (
            "shredded-memory",
            Box::new(|| Box::new(ShreddedMemoryBackend)),
        ),
        ("oracle", Box::new(|| Box::new(NestedOracleBackend))),
        ("flat-default", Box::new(|| Box::new(FlatDefaultBackend))),
        ("loop-lifting", Box::new(|| Box::new(LoopLiftBackend))),
        ("vandenbussche", Box::new(|| Box::new(VandenBusscheBackend))),
    ];
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    let mut out = Vec::new();
    for (backend_name, make_backend) in &backends {
        for scheme in IndexScheme::ALL {
            let session = Shredder::builder()
                .schema(schema.clone())
                .backend(make_backend())
                .index_scheme(scheme)
                .verify(false)
                .build()
                .expect("the organisation schema always configures a session");
            for (name, query) in &queries {
                let entry = match session.prepare(query) {
                    Ok(prepared) => AnalyzeEntry {
                        query: name,
                        backend: backend_name,
                        scheme,
                        skip_reason: None,
                        diagnostics: prepared.check().iter().cloned().collect(),
                    },
                    Err(e) => AnalyzeEntry {
                        query: name,
                        backend: backend_name,
                        scheme,
                        skip_reason: Some(e.to_string()),
                        diagnostics: Vec::new(),
                    },
                };
                out.push(entry);
            }
        }
    }
    out
}

/// Render the analysis sweep as a machine-readable JSON report
/// (`BENCH_pr6.json` in CI).
pub fn analyze_report_json(entries: &[AnalyzeEntry]) -> String {
    let errors: usize = entries.iter().map(AnalyzeEntry::error_count).sum();
    let warnings: usize = entries
        .iter()
        .map(|e| e.diagnostics.len() - e.error_count())
        .sum();
    let skipped = entries.iter().filter(|e| e.skip_reason.is_some()).count();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"static-analysis\",\n");
    out.push_str(&format!("  \"cells\": {},\n", entries.len()));
    out.push_str(&format!("  \"errors\": {},\n", errors));
    out.push_str(&format!("  \"warnings\": {},\n", warnings));
    out.push_str(&format!("  \"skipped\": {},\n", skipped));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"query\": \"{}\", \"backend\": \"{}\", \"scheme\": \"{}\", ",
            e.query, e.backend, e.scheme
        ));
        if let Some(reason) = &e.skip_reason {
            out.push_str(&format!(
                "\"skipped\": \"{}\", ",
                reason.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        out.push_str(&format!(
            "\"errors\": {}, \"diagnostics\": [",
            e.error_count()
        ));
        for (j, d) in e.diagnostics.iter().enumerate() {
            out.push_str(&format!(
                "{{\"severity\": \"{}\", \"code\": \"{}\", \"path\": \"{}\"}}",
                d.severity, d.code, d.path
            ));
            if j + 1 < e.diagnostics.len() {
                out.push_str(", ");
            }
        }
        out.push(']');
        out.push('}');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Pipeline observability (the PR 7 profiling-overhead comparison)
// ---------------------------------------------------------------------------

/// One profiled-vs-unprofiled comparison of a benchmark query on the
/// shredding session: the same prepared plan executed with per-operator
/// profiling off and on (stage tracing runs in both modes).
#[derive(Debug, Clone)]
pub struct ProfileComparison {
    pub query: String,
    /// `"flat"` (QF1–QF6) or `"nested"` (Q1–Q6).
    pub kind: &'static str,
    /// Number of flat SQL stages the query shreds into.
    pub stages: usize,
    /// Median execute time with per-operator profiling off.
    pub unprofiled_ms: f64,
    /// Median execute time with per-operator profiling on.
    pub profiled_ms: f64,
    /// Physical-plan nodes that reported actuals across all stages.
    pub operators: usize,
    /// Whether the profiled result diverged from the unprofiled result or
    /// from the nested reference semantics.
    pub diverged: bool,
}

impl ProfileComparison {
    /// Per-query profiling overhead in percent. Noisy at small scales — the
    /// harness gates on the suite-level aggregate, not on this.
    pub fn overhead_pct(&self) -> f64 {
        if self.unprofiled_ms > 0.0 {
            (self.profiled_ms - self.unprofiled_ms) / self.unprofiled_ms * 100.0
        } else {
            0.0
        }
    }
}

/// The full profiling sweep: per-query comparisons plus the per-stage and
/// per-operator aggregates read back from the session's metrics registry.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub rows: Vec<ProfileComparison>,
    /// `(stage histogram name, span count, mean ms, p95 ms)` per pipeline
    /// stage, from the session registry.
    pub stages: Vec<(String, u64, f64, f64)>,
    /// `(operator kind, execution count, total ms)` from profiled runs.
    pub operators: Vec<(String, u64, f64)>,
    /// Sum of the per-query unprofiled medians.
    pub unprofiled_total_ms: f64,
    /// Sum of the per-query profiled medians.
    pub profiled_total_ms: f64,
}

impl ProfileReport {
    /// Suite-level profiling overhead in percent (the <10% gate input).
    pub fn overhead_pct(&self) -> f64 {
        if self.unprofiled_total_ms > 0.0 {
            (self.profiled_total_ms - self.unprofiled_total_ms) / self.unprofiled_total_ms * 100.0
        } else {
            0.0
        }
    }

    /// Whether any query's profiled result diverged.
    pub fn any_divergence(&self) -> bool {
        self.rows.iter().any(|r| r.diverged)
    }
}

/// Run every benchmark query on the shredding session with per-operator
/// profiling off and on, checking both answers against the nested reference
/// semantics, and read the per-stage / per-operator aggregates back from the
/// session's metrics registry.
pub fn measure_profiling(instance: &Instance, runs: usize) -> ProfileReport {
    use shredding::session::Params;
    let session = instance.session(System::Shredding);
    let no_params = Params::new();
    let suites: [(&'static str, Vec<(&'static str, Term)>); 2] = [
        ("flat", datagen::queries::flat_queries()),
        ("nested", datagen::queries::nested_queries()),
    ];
    let mut rows = Vec::new();
    for (kind, queries) in suites {
        for (name, q) in queries {
            let prepared = session.prepare(&q).expect("benchmark queries prepare");
            let oracle = session.oracle(&q).expect("benchmark queries evaluate");
            let unprofiled = session
                .execute_profiled(&prepared, &no_params, false)
                .expect("unprofiled execution succeeds");
            let profiled = session
                .execute_profiled(&prepared, &no_params, true)
                .expect("profiled execution succeeds");
            let diverged = !profiled.multiset_eq(&unprofiled) || !profiled.multiset_eq(&oracle);
            let unprofiled_ms = median_ms(runs, || {
                session
                    .execute_profiled(&prepared, &no_params, false)
                    .expect("unprofiled execution succeeds")
            });
            let profiled_ms = median_ms(runs, || {
                session
                    .execute_profiled(&prepared, &no_params, true)
                    .expect("profiled execution succeeds")
            });
            let operators = session
                .recent_profiles()
                .last()
                .map(|p| p.operators.len())
                .unwrap_or(0);
            rows.push(ProfileComparison {
                query: name.to_string(),
                kind,
                stages: prepared.query_count(),
                unprofiled_ms,
                profiled_ms,
                operators,
                diverged,
            });
        }
    }
    let snapshot = session.metrics_snapshot();
    let mut stages = Vec::new();
    let mut operators = Vec::new();
    for (hist_name, h) in &snapshot.histograms {
        if let Some(stage) = hist_name.strip_prefix("stage.") {
            stages.push((stage.to_string(), h.count, h.mean_ms(), h.p95 as f64 / 1e6));
        } else if let Some(op) = hist_name.strip_prefix("operator.") {
            operators.push((op.to_string(), h.count, h.sum as f64 / 1e6));
        }
    }
    let unprofiled_total_ms = rows.iter().map(|r| r.unprofiled_ms).sum();
    let profiled_total_ms = rows.iter().map(|r| r.profiled_ms).sum();
    ProfileReport {
        rows,
        stages,
        operators,
        unprofiled_total_ms,
        profiled_total_ms,
    }
}

/// Render the profiling sweep as the machine-readable `BENCH_pr7.json`
/// document (hand-rolled: the workspace has no serde).
pub fn profile_report_json(instance: &Instance, runs: usize, report: &ProfileReport) -> String {
    fn f(ms: f64) -> String {
        if ms.is_finite() {
            format!("{:.4}", ms)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"pipeline-observability\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"runs\": {},\n",
        instance.departments, runs
    ));
    out.push_str(&format!(
        "  \"unprofiled_total_ms\": {},\n  \"profiled_total_ms\": {},\n  \
         \"overhead_pct\": {},\n  \"divergence\": {},\n",
        f(report.unprofiled_total_ms),
        f(report.profiled_total_ms),
        f(report.overhead_pct()),
        report.any_divergence()
    ));
    out.push_str("  \"queries\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"stages\": {}, \"operators\": {}, \
             \"unprofiled_ms\": {}, \"profiled_ms\": {}, \"overhead_pct\": {}, \
             \"diverged\": {}}}{}\n",
            row.query,
            row.kind,
            row.stages,
            row.operators,
            f(row.unprofiled_ms),
            f(row.profiled_ms),
            f(row.overhead_pct()),
            row.diverged,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stage_breakdown\": [\n");
    for (i, (stage, count, mean_ms, p95_ms)) in report.stages.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"count\": {}, \"mean_ms\": {}, \"p95_ms\": {}}}{}\n",
            stage,
            count,
            f(*mean_ms),
            f(*p95_ms),
            if i + 1 == report.stages.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"operator_breakdown\": [\n");
    for (i, (op, count, total_ms)) in report.operators.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"operator\": \"{}\", \"count\": {}, \"total_ms\": {}}}{}\n",
            op,
            count,
            f(*total_ms),
            if i + 1 == report.operators.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Incremental maintenance of live nested views (the PR 8 delta comparison)
// ---------------------------------------------------------------------------

/// One live-view maintenance comparison: a benchmark query kept live by a
/// [`shredding::Subscription`] while a seeded [`datagen::MutationStream`]
/// commits write batches of a fixed size. Each committed batch is timed two
/// ways —
///
/// * **incremental** — the maintenance work `Shredder::apply_batch` does for
///   the subscription (per-stage delta propagation through the cached
///   executors plus group-level invalidation of the stitcher's memo), read
///   off [`Subscription::maintain_nanos`];
/// * **recompute** — a full `execute` of the same prepared query against the
///   post-write storage, the from-scratch baseline.
///
/// Both sides exclude the storage write itself: the write is committed
/// either way, so the comparison is between the two ways of *knowing the
/// new answer* — folding the delta into the live view versus re-running the
/// query from scratch (the standard IVM framing). After every batch the
/// subscription's materialised value is compared with the recompute result
/// (the differential oracle); the comparison itself is untimed.
#[derive(Debug, Clone)]
pub struct DeltaComparison {
    pub query: String,
    /// `"flat"` (QF1–QF6) or `"nested"` (Q1–Q6).
    pub kind: &'static str,
    /// Operations per committed write batch.
    pub batch_size: usize,
    /// Number of write batches committed (and timed) for this cell.
    pub batches: usize,
    /// Total signed delta rows emitted across all committed batches.
    pub delta_rows: usize,
    /// Median per-batch incremental maintenance time (delta propagation +
    /// group invalidation; the storage write, common to both sides, is
    /// excluded).
    pub incremental_ms: f64,
    /// Median per-batch time of a full recompute on the post-write state.
    pub recompute_ms: f64,
    /// Times the live view fell back to reseeding a stage from scratch.
    pub reseeds: u64,
    /// Whether any batch left the live view differing from the recompute.
    pub diverged: bool,
}

impl DeltaComparison {
    /// Recompute time over incremental time (>1 means maintenance wins).
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms > 0.0 {
            self.recompute_ms / self.incremental_ms
        } else {
            f64::INFINITY
        }
    }
}

fn median_of(mut samples: Vec<Duration>) -> f64 {
    samples.sort();
    samples
        .get(samples.len() / 2)
        .map(|d| d.as_secs_f64() * 1000.0)
        .unwrap_or(0.0)
}

/// Drive every benchmark query as a live view under a seeded mutation
/// stream, once per requested write-batch size, and compare per-batch
/// incremental maintenance against full recompute. Each cell runs on its own
/// freshly generated database and session so writes never leak between
/// cells, and every batch's live value is differentially checked against the
/// recompute oracle.
pub fn compare_delta(
    departments: usize,
    batch_sizes: &[usize],
    batches: usize,
) -> Vec<DeltaComparison> {
    use datagen::{MutationConfig, MutationStream};

    let config = OrgConfig {
        departments,
        employees_per_department: 20,
        contacts_per_department: 5,
        ..OrgConfig::default()
    };
    let batches = batches.max(1);
    let suites: [(&'static str, Vec<(&'static str, Term)>); 2] = [
        ("flat", datagen::queries::flat_queries()),
        ("nested", datagen::queries::nested_queries()),
    ];
    let mut out = Vec::new();
    for (kind, queries) in suites {
        for (name, q) in &queries {
            for (si, &batch_size) in batch_sizes.iter().enumerate() {
                let db = generate(&config);
                let session = Shredder::builder()
                    .database(db.clone())
                    .build()
                    .expect("generated data always configures a session");
                let prepared = session.prepare(q).expect("benchmark queries prepare");
                let sub = session
                    .subscribe(&prepared)
                    .expect("benchmark queries subscribe");
                let mut stream = MutationStream::over(
                    &db,
                    MutationConfig {
                        ops_per_batch: batch_size,
                        seed: 42 + si as u64,
                        ..MutationConfig::default()
                    },
                );
                // Warm up both sides: the first materialisation builds the
                // stitch memo, the first recompute pays any lazy columnar
                // transposition, so neither lands in a median.
                sub.value().expect("live views materialise");
                session
                    .execute(&prepared)
                    .expect("benchmark queries execute");

                let mut incremental = Vec::with_capacity(batches);
                let mut recompute = Vec::with_capacity(batches);
                let mut delta_rows = 0usize;
                let mut diverged = false;
                for _ in 0..batches {
                    let batch = stream.next_batch();
                    let before = sub.maintain_nanos();
                    let delta = session
                        .apply_batch(&batch)
                        .expect("stream batches stay valid");
                    incremental.push(Duration::from_nanos(sub.maintain_nanos() - before));
                    delta_rows += delta.row_count();

                    let start = Instant::now();
                    let recomputed = session
                        .execute(&prepared)
                        .expect("benchmark queries execute");
                    recompute.push(start.elapsed());

                    let live = sub.value().expect("live views materialise");
                    if !live.multiset_eq(&recomputed) {
                        diverged = true;
                    }
                }
                out.push(DeltaComparison {
                    query: name.to_string(),
                    kind,
                    batch_size,
                    batches,
                    delta_rows,
                    incremental_ms: median_of(incremental),
                    recompute_ms: median_of(recompute),
                    reseeds: sub.reseeds(),
                    diverged,
                });
            }
        }
    }
    out
}

/// Render the delta comparison as the machine-readable `BENCH_pr8.json`
/// document (hand-rolled: the workspace has no serde).
pub fn delta_report_json(departments: usize, batches: usize, rows: &[DeltaComparison]) -> String {
    fn f(ms: f64) -> String {
        if ms.is_finite() {
            format!("{:.4}", ms)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"incremental-view-maintenance\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"batches_per_cell\": {},\n",
        departments, batches
    ));
    out.push_str("  \"queries\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"batch_size\": {}, \
             \"delta_rows\": {}, \"incremental_ms\": {}, \"recompute_ms\": {}, \
             \"speedup\": {}, \"reseeds\": {}, \"diverged\": {}}}{}\n",
            row.query,
            row.kind,
            row.batch_size,
            row.delta_rows,
            f(row.incremental_ms),
            f(row.recompute_ms),
            f(row.speedup()),
            row.reseeds,
            row.diverged,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Morsel-parallel single-query execution (the PR 9 comparison)
// ---------------------------------------------------------------------------

/// The morsel sizes the differential arm of the morsel gate sweeps: 1 and 7
/// force every operator down its parallel code path even on small inputs,
/// 4096 is [`sqlengine::DEFAULT_MORSEL_ROWS`].
pub const MORSEL_SIZES: [usize; 3] = [1, 7, 4096];

/// One morsel-parallelism comparison: a benchmark query's compiled SQL
/// stages executed sequentially (`workers = 1`) and morsel-parallel
/// (`workers = N`), with the parallel results differentially checked —
/// strict equality against the sequential baseline at every morsel size
/// (order included: the executor must be deterministic), bag equality
/// against the row-at-a-time interpreter (the engine-level oracle).
#[derive(Debug, Clone)]
pub struct MorselComparison {
    pub query: String,
    /// `"flat"` (QF1–QF6) or `"nested"` (Q1–Q6).
    pub kind: &'static str,
    /// Number of flat SQL stages the query shreds into.
    pub stages: usize,
    /// Median time to run every stage with `workers = 1`.
    pub single_ms: f64,
    /// Median time to run every stage with `workers = N` at the default
    /// morsel size.
    pub parallel_ms: f64,
    /// Whether every morsel size produced a result byte-identical to the
    /// sequential baseline (rows *and* row order).
    pub consistent: bool,
    /// Whether the parallel result agrees with the interpreter oracle as a
    /// bag.
    pub matches_oracle: bool,
}

impl MorselComparison {
    /// Sequential time over parallel time (>1 means parallelism wins).
    pub fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.single_ms / self.parallel_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The full morsel-parallelism sweep plus the host facts the CI gate needs
/// to decide between the scaling assertion and the 1-core relaxation.
#[derive(Debug, Clone)]
pub struct MorselReport {
    pub departments: usize,
    /// Worker count the timed parallel arm ran with (the session default:
    /// the host's available parallelism).
    pub workers: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub available_parallelism: usize,
    /// Morsel sizes the differential arm swept.
    pub morsel_sizes: Vec<usize>,
    pub rows: Vec<MorselComparison>,
}

/// Compare sequential and morsel-parallel execution of every benchmark
/// query's compiled SQL stages over the instance's loaded engine.
///
/// Correctness always runs at `workers = 4` (determinism does not depend on
/// the host actually having four cores — forcing multiple workers exercises
/// the parallel arms everywhere, morsel sizes 1 and 7 included). Timing runs
/// at the host's available parallelism, which is what a default-built
/// session would use.
pub fn compare_morsel(instance: &Instance, runs: usize) -> MorselReport {
    use sqlengine::value::compare_rows;
    use sqlengine::{ExecOptions, ParamValues, ResultSet, Row};

    let engine = instance.engine();
    let no_params = ParamValues::new();
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let timed_workers = available.max(2);
    // `min_parallel_rows: 0` disables the adaptive-parallelism gate: this
    // sweep exists to prove fan-out determinism, so it must actually fan
    // out even at smoke-test scales where the gate would stay sequential.
    let check_opts = |morsel_rows: usize| ExecOptions {
        workers: 4,
        morsel_rows,
        min_parallel_rows: 0,
    };
    let sorted = |rs: &ResultSet| -> Vec<Row> {
        let mut rows = rs.rows.clone();
        rows.sort_by(|a, b| compare_rows(a, b));
        rows
    };

    let suites: [(&'static str, Vec<(&'static str, Term)>); 2] = [
        ("flat", datagen::queries::flat_queries()),
        ("nested", datagen::queries::nested_queries()),
    ];
    let mut rows = Vec::new();
    for (kind, queries) in suites {
        for (name, q) in queries {
            let compiled = shredding::pipeline::compile(&q, &instance.schema)
                .expect("benchmark queries always compile");
            let stages: Vec<_> = compiled.stages.annotations().into_iter().collect();
            let run_all = |opts: ExecOptions| -> Vec<ResultSet> {
                stages
                    .iter()
                    .map(|s| {
                        engine
                            .execute_plan_bound_opts(&s.plan, &no_params, opts)
                            .expect("stage plans always execute")
                            .0
                            .into_result_set()
                    })
                    .collect()
            };

            // Differential arm: workers(1) is the baseline; every morsel
            // size must reproduce it exactly, and the parallel answer must
            // match the interpreter as a bag.
            let baseline = run_all(ExecOptions::default());
            let consistent = MORSEL_SIZES
                .iter()
                .all(|&m| run_all(check_opts(m)) == baseline);
            let matches_oracle = stages.iter().zip(&baseline).all(|(s, b)| {
                let interpreted = engine
                    .execute_interpreted(&s.sql)
                    .expect("stage SQL always executes");
                sorted(&interpreted) == sorted(b)
            });

            // Timing arm: sequential vs. the host's default worker count at
            // the default morsel size.
            let single_ms = median_ms(runs, || run_all(ExecOptions::default()));
            let parallel_ms = median_ms(runs, || {
                run_all(ExecOptions {
                    min_parallel_rows: 0,
                    ..ExecOptions::with_workers(timed_workers)
                })
            });
            rows.push(MorselComparison {
                query: name.to_string(),
                kind,
                stages: stages.len(),
                single_ms,
                parallel_ms,
                consistent,
                matches_oracle,
            });
        }
    }
    MorselReport {
        departments: instance.departments,
        workers: timed_workers,
        available_parallelism: available,
        morsel_sizes: MORSEL_SIZES.to_vec(),
        rows,
    }
}

/// Render the morsel-parallelism sweep as the machine-readable
/// `BENCH_pr9.json` document (hand-rolled: the workspace has no serde).
pub fn morsel_report_json(report: &MorselReport, runs: usize) -> String {
    fn f(ms: f64) -> String {
        if ms.is_finite() {
            format!("{:.4}", ms)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"morsel-parallel-execution\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"workers\": {},\n  \"available_parallelism\": {},\n  \
         \"runs\": {},\n",
        report.departments, report.workers, report.available_parallelism, runs
    ));
    let sizes: Vec<String> = report.morsel_sizes.iter().map(usize::to_string).collect();
    out.push_str(&format!("  \"morsel_sizes\": [{}],\n", sizes.join(", ")));
    out.push_str("  \"queries\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"stages\": {}, \
             \"single_ms\": {}, \"parallel_ms\": {}, \"speedup\": {}, \
             \"consistent\": {}, \"matches_oracle\": {}}}{}\n",
            row.query,
            row.kind,
            row.stages,
            f(row.single_ms),
            f(row.parallel_ms),
            f(row.speedup()),
            row.consistent,
            row.matches_oracle,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Logical optimizer: optimized vs. unoptimized plans (the PR 10 comparison)
// ---------------------------------------------------------------------------

/// One optimizer comparison: a benchmark query executed through two sessions
/// over the same loaded engine — one with the logical rewrite phase
/// (decorrelation, predicate pushdown, constant folding, build-side
/// re-choice, cross-stage subplan sharing) and one compiling the planner's
/// raw output. Both answers are differentially checked against each other,
/// and every optimized stage plan is checked per stage against the engine's
/// row-at-a-time SQL interpreter — an oracle that never sees the rewrites
/// (the λNRC oracle would be the natural alternative, but its strict `AND`
/// makes Q2 at committed scale take hours; the SQL interpreter is the same
/// engine-level oracle the morsel gate uses at 256 departments). Timing
/// covers `execute` of the prepared handles (the rewrite itself is a
/// prepare-time cost the plan cache amortises away).
#[derive(Debug, Clone)]
pub struct OptComparison {
    pub query: String,
    /// `"flat"` (QF1–QF6) or `"nested"` (Q1–Q6).
    pub kind: &'static str,
    /// Number of flat SQL stages the query shreds into.
    pub stages: usize,
    /// Total rewrite annotations across all stages (0 means the optimizer
    /// left the plans untouched, so both arms time the same plan).
    pub rewrites: usize,
    /// Median execution time of the unoptimized plans.
    pub unoptimized_ms: f64,
    /// Median execution time of the rewritten plans.
    pub optimized_ms: f64,
    /// Whether both arms return the same bag.
    pub agree: bool,
    /// Whether every optimized stage plan matches the row-at-a-time SQL
    /// interpreter on the stage's original (pre-rewrite) SQL.
    pub matches_oracle: bool,
}

impl OptComparison {
    /// Unoptimized time over optimized time (>1 means the rewrites win).
    pub fn speedup(&self) -> f64 {
        if self.optimized_ms > 0.0 {
            self.unoptimized_ms / self.optimized_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Run every benchmark query through an optimizing and a non-optimizing
/// session over the same generated database and loaded engine, check the
/// answers differentially and against the engine-level interpreter oracle,
/// and report median execution times for both arms.
pub fn compare_opt(departments: usize, runs: usize) -> Vec<OptComparison> {
    use sqlengine::value::compare_rows;
    use sqlengine::{ExecOptions, ParamValues, ResultSet, Row};

    let config = OrgConfig {
        departments,
        employees_per_department: 20,
        contacts_per_department: 5,
        ..OrgConfig::default()
    };
    let db = generate(&config);
    let optimized = Shredder::builder()
        .database(db)
        .optimize(true)
        .build()
        .expect("generated data always configures a session");
    // The unoptimized session shares the loaded engine (not a copy) so both
    // arms scan identical storage; only the plans differ.
    let engine = optimized
        .shared_engine()
        .expect("generated data always loads into the engine");
    let unoptimized = Shredder::builder()
        .schema(organisation_schema())
        .engine(engine)
        .optimize(false)
        .build()
        .expect("a schema-plus-engine session is valid");

    let schema = organisation_schema();
    let no_params = ParamValues::new();
    let sorted = |rs: &ResultSet| -> Vec<Row> {
        let mut rows = rs.rows.clone();
        rows.sort_by(|a, b| compare_rows(a, b));
        rows
    };

    let suites: [(&'static str, Vec<(&'static str, Term)>); 2] = [
        ("flat", datagen::queries::flat_queries()),
        ("nested", datagen::queries::nested_queries()),
    ];
    let mut out = Vec::new();
    for (kind, queries) in suites {
        for (name, q) in queries {
            let p_opt = optimized.prepare(&q).expect("benchmark queries prepare");
            let p_un = unoptimized.prepare(&q).expect("benchmark queries prepare");
            // Warm-up doubles as the differential check (untimed).
            let v_opt = optimized.execute(&p_opt).expect("optimized plans execute");
            let v_un = unoptimized
                .execute(&p_un)
                .expect("unoptimized plans execute");
            let agree = v_opt.multiset_eq(&v_un);
            // Engine-level oracle: every optimized stage plan, executed as
            // compiled (rewrites included), must agree as a bag with the
            // row-at-a-time interpretation of the stage's original SQL.
            let compiled = shredding::pipeline::compile(&q, &schema)
                .expect("benchmark queries always compile");
            let matches_oracle = compiled.stages.annotations().into_iter().all(|s| {
                let planned = optimized
                    .engine()
                    .expect("the engine was built eagerly")
                    .execute_plan_bound_opts(&s.plan, &no_params, ExecOptions::default())
                    .expect("stage plans always execute")
                    .0
                    .into_result_set();
                let interpreted = optimized
                    .engine()
                    .expect("the engine was built eagerly")
                    .execute_interpreted(&s.sql)
                    .expect("stage SQL always executes");
                sorted(&interpreted) == sorted(&planned)
            });
            let explain = p_opt.explain();
            let rewrites = explain.stages.iter().map(|s| s.rewrites.len()).sum();

            // Interleave the timed runs with alternating order: timing one
            // arm to completion before the other hands the second arm warmer
            // caches, which reads as a phantom regression on queries whose
            // plans are identical in both arms.
            let mut opt_samples = Vec::with_capacity(runs.max(1));
            let mut un_samples = Vec::with_capacity(runs.max(1));
            for i in 0..runs.max(1) {
                let mut time_opt = || {
                    let start = Instant::now();
                    std::hint::black_box(
                        optimized.execute(&p_opt).expect("optimized plans execute"),
                    );
                    opt_samples.push(start.elapsed());
                };
                let mut time_un = || {
                    let start = Instant::now();
                    std::hint::black_box(
                        unoptimized
                            .execute(&p_un)
                            .expect("unoptimized plans execute"),
                    );
                    un_samples.push(start.elapsed());
                };
                if i % 2 == 0 {
                    time_un();
                    time_opt();
                } else {
                    time_opt();
                    time_un();
                }
            }
            let optimized_ms = median_of(opt_samples);
            let unoptimized_ms = median_of(un_samples);
            out.push(OptComparison {
                query: name.to_string(),
                kind,
                stages: explain.stages.len(),
                rewrites,
                unoptimized_ms,
                optimized_ms,
                agree,
                matches_oracle,
            });
        }
    }
    out
}

/// Render the optimizer comparison as the machine-readable `BENCH_pr10.json`
/// document (hand-rolled: the workspace has no serde).
pub fn opt_report_json(departments: usize, runs: usize, rows: &[OptComparison]) -> String {
    fn f(ms: f64) -> String {
        if ms.is_finite() {
            format!("{:.4}", ms)
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"logical-optimizer\",\n");
    out.push_str(&format!(
        "  \"departments\": {},\n  \"runs\": {},\n",
        departments, runs
    ));
    out.push_str("  \"queries\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"kind\": \"{}\", \"stages\": {}, \
             \"rewrites\": {}, \"unoptimized_ms\": {}, \"optimized_ms\": {}, \
             \"speedup\": {}, \"agree\": {}, \"matches_oracle\": {}}}{}\n",
            row.query,
            row.kind,
            row.stages,
            row.rewrites,
            f(row.unoptimized_ms),
            f(row.optimized_ms),
            f(row.speedup()),
            row.agree,
            row.matches_oracle,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// A minimal timing harness for the `benches/` targets (the workspace builds
/// without external crates, so Criterion is not available): warm up once,
/// time `iters` runs, report the median.
pub mod micro {
    /// Time `f` over `iters` runs after one warm-up, printing the median
    /// (from an [`obs::Histogram`] — the same log-linear quantile readout the
    /// session registry uses, so benches and metrics agree on the math).
    /// The result of every run is passed through [`std::hint::black_box`] so
    /// the optimiser cannot eliminate a side-effect-free benchmark body.
    pub fn run<R>(label: &str, iters: usize, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let hist = obs::Histogram::new();
        for _ in 0..iters.max(1) {
            hist.time(|| std::hint::black_box(f()));
        }
        println!(
            "{:<55} {:>10.3} ms (median of {})",
            label,
            hist.quantile(0.5) as f64 / 1e6,
            iters.max(1)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_analysis_sweep_covers_every_cell_and_finds_no_errors() {
        let entries = analyze_all();
        // 12 queries × 6 backends × 3 indexing schemes.
        assert_eq!(entries.len(), 12 * 6 * 3);
        let errors: usize = entries.iter().map(AnalyzeEntry::error_count).sum();
        assert_eq!(errors, 0, "the benchmark corpus must verify clean");
        // The flat-default backend skips nested queries; shredding never skips.
        assert!(entries
            .iter()
            .any(|e| e.backend == "flat-default" && e.skip_reason.is_some()));
        assert!(entries
            .iter()
            .all(|e| e.backend != "sqlengine" || e.skip_reason.is_none()));
        let json = analyze_report_json(&entries);
        assert!(json.contains("\"static-analysis\""));
        assert_eq!(json.matches("\"query\"").count(), entries.len());
    }

    #[test]
    fn the_vectorized_comparison_covers_the_full_suite() {
        let instance = Instance::with_config(OrgConfig::small());
        let rows = compare_vectorized(&instance, 1);
        assert_eq!(rows.len(), 12, "QF1–QF6 and Q1–Q6");
        assert!(rows.iter().any(|r| r.kind == "flat"));
        assert!(rows.iter().any(|r| r.kind == "nested" && r.stages > 1));
        let json = vexec_report_json(&instance, 1, &rows);
        assert!(json.contains("\"interpreter-vs-vectorized\""));
        assert!(json.contains("\"speedup\""));
        assert_eq!(json.matches("\"query\"").count(), 12);
    }

    #[test]
    fn the_concurrency_sweep_reports_scaling_points_and_stable_planning() {
        let instance = Instance::with_config(OrgConfig::small());
        let report = measure_concurrency(&instance, &[1, 2], 4);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].total_execs, 4);
        assert_eq!(report.points[1].total_execs, 8);
        assert_eq!(
            report.engine_plans_built_during_run, 0,
            "bound re-execution must never reach the engine's planner"
        );
        assert!(
            report.cache_hit_rate > 0.9,
            "every run_bound after the warm-up prepares from the cache \
             (hit rate {})",
            report.cache_hit_rate
        );
        let json = concurrency_report_json(&instance, &report);
        assert!(json.contains("\"concurrent-throughput\""));
        assert_eq!(json.matches("\"speedup_vs_1_thread\"").count(), 2);
    }

    #[test]
    fn the_stitch_comparison_covers_the_full_suite() {
        let instance = Instance::with_config(OrgConfig::small());
        let rows = compare_stitch(&instance, 1);
        assert_eq!(rows.len(), 12, "QF1–QF6 and Q1–Q6");
        assert!(rows.iter().any(|r| r.kind == "nested" && r.stages > 1));
        let json = stitch_report_json(&instance, 1, &rows);
        assert!(json.contains("\"columnar-result-assembly\""));
        assert!(json.contains("\"row_path_ms\""));
        assert_eq!(json.matches("\"query\"").count(), 12);
    }

    #[test]
    fn the_delta_comparison_keeps_live_views_on_the_oracle() {
        let rows = compare_delta(2, &[1, 4], 2);
        // 12 queries × 2 batch sizes.
        assert_eq!(rows.len(), 12 * 2);
        assert!(
            rows.iter().all(|r| !r.diverged),
            "live views must match the recompute oracle on every batch"
        );
        assert!(
            rows.iter().any(|r| r.delta_rows > 0),
            "the mutation stream must commit real work"
        );
        let json = delta_report_json(2, 2, &rows);
        assert!(json.contains("\"incremental-view-maintenance\""));
        assert!(json.contains("\"speedup\""));
        assert_eq!(json.matches("\"query\"").count(), rows.len());
    }

    #[test]
    fn the_morsel_comparison_is_consistent_and_on_the_oracle() {
        let instance = Instance::with_config(OrgConfig::small());
        let report = compare_morsel(&instance, 1);
        assert_eq!(report.rows.len(), 12, "QF1–QF6 and Q1–Q6");
        assert_eq!(report.morsel_sizes, vec![1, 7, 4096]);
        for row in &report.rows {
            assert!(
                row.consistent,
                "{}: some morsel size changed the answer",
                row.query
            );
            assert!(
                row.matches_oracle,
                "{}: parallel execution diverged from the interpreter",
                row.query
            );
        }
        let json = morsel_report_json(&report, 1);
        assert!(json.contains("\"morsel-parallel-execution\""));
        assert!(json.contains("\"available_parallelism\""));
        assert_eq!(json.matches("\"query\"").count(), 12);
    }

    #[test]
    fn the_opt_comparison_agrees_everywhere_and_rewrites_the_heavy_queries() {
        let rows = compare_opt(2, 1);
        assert_eq!(rows.len(), 12, "QF1–QF6 and Q1–Q6");
        for row in &rows {
            assert!(
                row.agree,
                "{}: optimized and unoptimized answers differ",
                row.query
            );
            assert!(
                row.matches_oracle,
                "{}: optimized answer off the oracle",
                row.query
            );
        }
        // The doubly-correlated queries must actually get rewritten.
        for name in ["Q2", "QF6"] {
            let row = rows.iter().find(|r| r.query == name).unwrap();
            assert!(row.rewrites > 0, "{} saw no rewrites", name);
        }
        let json = opt_report_json(2, 1, &rows);
        assert!(json.contains("\"logical-optimizer\""));
        assert!(json.contains("\"speedup\""));
        assert_eq!(json.matches("\"query\"").count(), 12);
    }

    #[test]
    fn measurements_report_sensible_values() {
        let instance = Instance::with_config(OrgConfig::small());
        let (name, q) = &datagen::queries::flat_queries()[0];
        let m = measure(System::Shredding, name, q, &instance);
        assert!(m.error.is_none());
        assert!(m.millis() >= 0.0);
    }

    #[test]
    fn all_three_systems_agree_on_flat_queries() {
        let instance = Instance::with_config(OrgConfig::small());
        for (name, q) in datagen::queries::flat_queries() {
            for system in [System::Shredding, System::LoopLifting, System::Default] {
                check_against_reference(system, &q, &instance)
                    .unwrap_or_else(|e| panic!("{} under {}: {}", name, system, e));
            }
        }
    }

    #[test]
    fn shredding_and_loop_lifting_agree_on_nested_queries() {
        let instance = Instance::with_config(OrgConfig {
            departments: 3,
            employees_per_department: 5,
            contacts_per_department: 2,
            ..OrgConfig::default()
        });
        for (name, q) in datagen::queries::nested_queries() {
            for system in [System::Shredding, System::LoopLifting] {
                check_against_reference(system, &q, &instance)
                    .unwrap_or_else(|e| panic!("{} under {}: {}", name, system, e));
            }
        }
    }
}
