//! The `experiments` binary regenerates the tables behind the paper's
//! figures.
//!
//! ```text
//! experiments --figure 10                 # flat queries QF1–QF6 (Figure 10)
//! experiments --figure 11                 # nested queries Q1–Q6 (Figure 11)
//! experiments --appendix-a               # Van den Bussche blow-up (Appendix A)
//! experiments --all                      # everything
//! experiments --departments 64          # extend the scaling sweep
//! experiments --max-departments 64      # (alias of --departments)
//! experiments --check                    # verify every result against N⟦−⟧
//! experiments --vexec-json BENCH_pr2.json  # interpreter vs. vectorized engine
//! experiments --stitch-json BENCH_pr5.json # row-path vs. columnar result assembly
//! experiments --params-json BENCH_pr3.json # bound re-execution vs. replanning
//! experiments --concurrency-json BENCH_pr4.json # shared-session thread scaling
//! experiments --profile-json BENCH_pr7.json # stage tracing + operator profiling overhead
//! experiments --delta-json BENCH_pr8.json  # incremental maintenance vs. full recompute
//! experiments --morsel-json BENCH_pr9.json # morsel-parallel vs. sequential execution
//! experiments --opt-json BENCH_pr10.json   # logical optimizer on vs. off
//! ```
//!
//! Output layout mirrors the paper: one row per query and system, one column
//! per department count, entries in milliseconds (median of 3 runs).

use baselines::vandenbussche as vdb;
use bench::{check_against_reference, measure_median, Instance, System};

struct Options {
    figure10: bool,
    figure11: bool,
    appendix_a: bool,
    max_departments: usize,
    runs: usize,
    check: bool,
    vexec_json: Option<String>,
    params_json: Option<String>,
    param_bindings: usize,
    concurrency_json: Option<String>,
    concurrency_execs: usize,
    stitch_json: Option<String>,
    analyze_json: Option<String>,
    profile_json: Option<String>,
    delta_json: Option<String>,
    morsel_json: Option<String>,
    opt_json: Option<String>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        figure10: false,
        figure11: false,
        appendix_a: false,
        max_departments: 32,
        runs: 3,
        check: false,
        vexec_json: None,
        params_json: None,
        param_bindings: 64,
        concurrency_json: None,
        concurrency_execs: 64,
        stitch_json: None,
        analyze_json: None,
        profile_json: None,
        delta_json: None,
        morsel_json: None,
        opt_json: None,
    };
    let mut i = 0;
    let mut any = false;
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("10") => opts.figure10 = true,
                    Some("11") => opts.figure11 = true,
                    other => {
                        eprintln!("unknown figure {:?} (expected 10 or 11)", other);
                        std::process::exit(2);
                    }
                }
                any = true;
            }
            "--appendix-a" => {
                opts.appendix_a = true;
                any = true;
            }
            "--all" => {
                opts.figure10 = true;
                opts.figure11 = true;
                opts.appendix_a = true;
                any = true;
            }
            // `--departments` is the uniform scale knob across every bench
            // gate; `--max-departments` stays as an alias for older scripts.
            "--departments" | "--max-departments" => {
                i += 1;
                opts.max_departments =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--departments expects a number");
                        std::process::exit(2);
                    });
            }
            "--runs" => {
                i += 1;
                opts.runs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(3);
            }
            "--check" => opts.check = true,
            "--vexec-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--vexec-json expects a file path");
                    std::process::exit(2);
                });
                opts.vexec_json = Some(path);
                any = true;
            }
            "--params-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--params-json expects a file path");
                    std::process::exit(2);
                });
                opts.params_json = Some(path);
                any = true;
            }
            "--param-bindings" => {
                i += 1;
                opts.param_bindings =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--param-bindings expects a number");
                        std::process::exit(2);
                    });
            }
            "--concurrency-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--concurrency-json expects a file path");
                    std::process::exit(2);
                });
                opts.concurrency_json = Some(path);
                any = true;
            }
            "--stitch-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--stitch-json expects a file path");
                    std::process::exit(2);
                });
                opts.stitch_json = Some(path);
                any = true;
            }
            "--analyze-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--analyze-json expects a file path");
                    std::process::exit(2);
                });
                opts.analyze_json = Some(path);
                any = true;
            }
            "--profile-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--profile-json expects a file path");
                    std::process::exit(2);
                });
                opts.profile_json = Some(path);
                any = true;
            }
            "--delta-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--delta-json expects a file path");
                    std::process::exit(2);
                });
                opts.delta_json = Some(path);
                any = true;
            }
            "--morsel-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--morsel-json expects a file path");
                    std::process::exit(2);
                });
                opts.morsel_json = Some(path);
                any = true;
            }
            "--opt-json" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--opt-json expects a file path");
                    std::process::exit(2);
                });
                opts.opt_json = Some(path);
                any = true;
            }
            "--concurrency-execs" => {
                i += 1;
                opts.concurrency_execs =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--concurrency-execs expects a number");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--figure 10|11] [--appendix-a] [--all] \
                     [--departments N] [--runs N] [--check] [--vexec-json PATH] \
                     [--params-json PATH] [--param-bindings N] \
                     [--concurrency-json PATH] [--concurrency-execs N] \
                     [--stitch-json PATH] [--analyze-json PATH] [--profile-json PATH] \
                     [--delta-json PATH] [--morsel-json PATH] [--opt-json PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {}", other);
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !any {
        opts.figure10 = true;
        opts.figure11 = true;
        opts.appendix_a = true;
    }
    opts
}

fn department_scales(max: usize) -> Vec<usize> {
    let mut scales = Vec::new();
    let mut d = 4;
    while d <= max {
        scales.push(d);
        d *= 2;
    }
    if scales.is_empty() {
        scales.push(max.max(1));
    }
    scales
}

fn print_header(title: &str, scales: &[usize]) {
    println!("\n=== {} ===", title);
    print!("{:<6} {:<14}", "query", "system");
    for d in scales {
        print!(" {:>9}", format!("{} dept", d));
    }
    println!();
}

fn run_figure(
    title: &str,
    queries: Vec<(&'static str, nrc::Term)>,
    systems: &[System],
    opts: &Options,
    instances: &[Instance],
) {
    let scales: Vec<usize> = instances.iter().map(|i| i.departments).collect();
    print_header(title, &scales);
    for (name, query) in &queries {
        for system in systems {
            print!("{:<6} {:<14}", name, system.to_string());
            for instance in instances {
                if opts.check {
                    if let Err(e) = check_against_reference(*system, query, instance) {
                        print!(" {:>9}", "MISMATCH");
                        eprintln!("check failed for {} under {}: {}", name, system, e);
                        continue;
                    }
                }
                let m = measure_median(*system, name, query, instance, opts.runs);
                match m.error {
                    None => print!(" {:>9.1}", m.millis()),
                    Some(_) => print!(" {:>9}", "n/a"),
                }
            }
            println!();
        }
    }
}

fn appendix_a() {
    println!("\n=== Appendix A: Van den Bussche simulation on multiset unions ===");
    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>10} {:>12}",
        "instance", "adom", "correct tuples", "vdb tuples", "blow-up", "bag-correct"
    );
    let (r, s) = vdb::appendix_a_instance();
    let report = vdb::measure_blowup(&r, &s);
    print_blowup("paper example", &report);
    for n in [4usize, 8, 16, 32] {
        let (r, s) = vdb::scaled_instance(n, 2);
        let report = vdb::measure_blowup(&r, &s);
        print_blowup(&format!("{} rows x 2 elems", n), &report);
    }
    println!(
        "\nQuery shredding represents the same unions with the `correct tuples` count and\n\
         preserves multiplicities; the simulation grows with |adom|^2 and does not."
    );
}

fn print_blowup(label: &str, report: &vdb::BlowupReport) {
    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>10.1} {:>12}",
        label,
        report.adom_size,
        report.correct_tuples,
        report.vdb_tuples,
        report.blowup_factor,
        if report.preserves_multiplicity {
            "yes"
        } else {
            "no"
        }
    );
}

/// Engine-level interpreter-vs-vectorized comparison over the compiled SQL
/// stages of every benchmark query; prints a table and writes the
/// machine-readable report (`BENCH_pr2.json` in CI).
fn vexec_report(path: &str, opts: &Options) {
    let instance = Instance::at_scale(opts.max_departments);
    println!(
        "\n=== Interpreter vs. vectorized executor ({} departments, median of {}) ===",
        instance.departments, opts.runs
    );
    println!(
        "{:<6} {:<7} {:>7} {:>10} {:>13} {:>13} {:>9}",
        "query", "kind", "stages", "plan ms", "interp ms", "vexec ms", "speedup"
    );
    let rows = bench::compare_vectorized(&instance, opts.runs);
    for row in &rows {
        println!(
            "{:<6} {:<7} {:>7} {:>10.4} {:>13.4} {:>13.4} {:>8.1}x",
            row.query,
            row.kind,
            row.stages,
            row.plan_ms,
            row.interpreter_ms,
            row.vectorized_ms,
            row.speedup()
        );
    }
    let json = bench::vexec_report_json(&instance, opts.runs, &rows);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);
}

/// The PR 3 parametric-workload comparison: one prepared shape re-executed
/// with N distinct bindings (bind variables) against replanning per
/// constant. Writes the machine-readable report and fails the process if the
/// ad-hoc plan-cache hit rate is zero (auto-parameterization regressed).
fn params_report(path: &str, opts: &Options) {
    let instance = Instance::at_scale(opts.max_departments);
    println!(
        "\n=== Bound re-execution vs. replanning ({} departments, {} bindings, median of {}) ===",
        instance.departments, opts.param_bindings, opts.runs
    );
    println!(
        "{:<14} {:>10} {:>13} {:>14} {:>9} {:>10} {:>8}",
        "workload", "prepare ms", "bound ms/exec", "replan ms/exec", "speedup", "hit rate", "plans"
    );
    let rows = bench::compare_params(&instance, opts.param_bindings, opts.runs);
    for row in &rows {
        println!(
            "{:<14} {:>10.4} {:>13.4} {:>14.4} {:>8.1}x {:>9.1}% {:>8}",
            row.workload,
            row.prepare_ms,
            row.bound_per_exec_ms,
            row.replan_per_exec_ms,
            row.speedup(),
            row.cache_hit_rate * 100.0,
            row.engine_plans_built_during_bound,
        );
    }
    let json = bench::params_report_json(&instance, opts.runs, &rows);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);
    for row in &rows {
        if row.cache_hit_rate <= 0.0 {
            eprintln!(
                "FAIL: workload {} has a 0% plan-cache hit rate — queries differing \
                 only in constants are not sharing plans",
                row.workload
            );
            std::process::exit(1);
        }
        if row.engine_plans_built_during_bound > 0 {
            eprintln!(
                "FAIL: workload {} built {} engine plans during bound re-execution",
                row.workload, row.engine_plans_built_during_bound
            );
            std::process::exit(1);
        }
    }
}

/// The PR 4 shared-session scaling sweep: one `Shredder` cloned into
/// 1/2/4/8 worker threads, each performing K bound executions of the
/// parametric workloads through the shared plan cache. Writes the
/// machine-readable report and fails the process if the shared state
/// misbehaved (engine-side re-planning, cold plan cache) or — on hosts with
/// at least 4 cores — if 4-thread throughput does not exceed the 1-thread
/// baseline.
fn concurrency_report(path: &str, opts: &Options) {
    let instance = Instance::at_scale(opts.max_departments);
    let thread_counts = [1usize, 2, 4, 8];
    println!(
        "\n=== Shared-session throughput ({} departments, {} execs/thread, best of {}) ===",
        instance.departments, opts.concurrency_execs, opts.runs
    );
    let report = bench::measure_concurrency_best_of(
        &instance,
        &thread_counts,
        opts.concurrency_execs,
        opts.runs,
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>9}",
        "threads", "total execs", "elapsed ms", "execs/sec", "speedup"
    );
    for p in &report.points {
        println!(
            "{:<8} {:>12} {:>12.2} {:>14.1} {:>8.2}x",
            p.threads,
            p.total_execs,
            p.elapsed_ms,
            p.execs_per_sec,
            report.speedup_at(p.threads).unwrap_or(f64::NAN)
        );
    }
    println!(
        "plan-cache hit rate {:.1}%, engine plans built during run: {}, host parallelism: {}",
        report.cache_hit_rate * 100.0,
        report.engine_plans_built_during_run,
        report.available_parallelism
    );
    let json = bench::concurrency_report_json(&instance, &report);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);

    if report.engine_plans_built_during_run > 0 {
        eprintln!(
            "FAIL: {} engine plans were built during concurrent bound re-execution",
            report.engine_plans_built_during_run
        );
        std::process::exit(1);
    }
    if report.cache_hit_rate <= 0.9 {
        eprintln!(
            "FAIL: plan-cache hit rate {:.1}% under concurrency (expected > 90%)",
            report.cache_hit_rate * 100.0
        );
        std::process::exit(1);
    }
    let speedup4 = report.speedup_at(4).unwrap_or(0.0);
    if report.available_parallelism >= 4 {
        if speedup4 <= 1.0 {
            eprintln!(
                "FAIL: 4-thread throughput must exceed the 1-thread baseline on a \
                 {}-way host, got {:.2}x",
                report.available_parallelism, speedup4
            );
            std::process::exit(1);
        }
    } else if speedup4 <= 0.5 {
        // On an under-provisioned host real scaling is impossible; still
        // refuse catastrophic collapse (a serializing lock on the hot path).
        eprintln!(
            "FAIL: 4-thread throughput collapsed to {:.2}x of the 1-thread \
             baseline on a {}-way host (lock contention on the read path?)",
            speedup4, report.available_parallelism
        );
        std::process::exit(1);
    } else {
        println!(
            "note: host has {} core(s); thread-scaling assertion relaxed to \
             a no-collapse check ({:.2}x at 4 threads)",
            report.available_parallelism, speedup4
        );
    }
}

/// The PR 5 result-assembly comparison: the same per-stage engine output
/// decoded and stitched over the row path (transpose -> per-row `FlatValue`
/// trees -> row-at-a-time stitch) and the columnar path (index-keyed grouping
/// over `Arc`-shared columns -> one-pass materialisation). Writes the
/// machine-readable report and fails the process if the columnar path does
/// not beat the row path on every nested benchmark query.
fn stitch_report(path: &str, opts: &Options) {
    let instance = Instance::at_scale(opts.max_departments);
    println!(
        "\n=== Row-path vs. columnar result assembly ({} departments, median of {}) ===",
        instance.departments, opts.runs
    );
    println!(
        "{:<6} {:<7} {:>7} {:>8} {:>13} {:>13} {:>9}",
        "query", "kind", "stages", "rows", "row ms", "columnar ms", "speedup"
    );
    let rows = bench::compare_stitch(&instance, opts.runs);
    for row in &rows {
        println!(
            "{:<6} {:<7} {:>7} {:>8} {:>13.4} {:>13.4} {:>8.1}x",
            row.query,
            row.kind,
            row.stages,
            row.rows,
            row.row_path_ms,
            row.columnar_ms,
            row.speedup()
        );
    }
    let json = bench::stitch_report_json(&instance, opts.runs, &rows);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);
    for row in &rows {
        // Gate only queries that decode at least one row: with zero rows
        // both paths are sub-microsecond no-ops and the comparison is pure
        // timer noise.
        if row.kind == "nested" && row.rows > 0 && row.columnar_ms >= row.row_path_ms {
            eprintln!(
                "FAIL: nested query {} assembles results slower on the columnar path \
                 ({:.4} ms) than on the row path ({:.4} ms)",
                row.query, row.columnar_ms, row.row_path_ms
            );
            std::process::exit(1);
        }
    }
}

/// The PR 6 static-verification sweep: run the whole analysis pass (λNRC
/// lints, shredded-package checks, physical-plan validation) over every
/// benchmark query × all six backends × all three indexing schemes, write
/// the machine-readable report, and fail the process on any error-severity
/// diagnostic.
fn analyze_report(path: &str) {
    println!("\n=== Static verification sweep (12 queries × 6 backends × 3 schemes) ===");
    let entries = bench::analyze_all();
    println!(
        "{:<16} {:<10} {:>7} {:>8} {:>7} {:>9}",
        "backend", "scheme", "cells", "skipped", "errors", "warnings"
    );
    let mut backends: Vec<&'static str> = entries.iter().map(|e| e.backend).collect();
    backends.dedup();
    for backend in backends {
        for scheme in shredding::IndexScheme::ALL {
            let cells: Vec<_> = entries
                .iter()
                .filter(|e| e.backend == backend && e.scheme == scheme)
                .collect();
            let skipped = cells.iter().filter(|e| e.skip_reason.is_some()).count();
            let errors: usize = cells.iter().map(|e| e.error_count()).sum();
            let warnings: usize = cells
                .iter()
                .map(|e| e.diagnostics.len() - e.error_count())
                .sum();
            println!(
                "{:<16} {:<10} {:>7} {:>8} {:>7} {:>9}",
                backend,
                scheme.to_string(),
                cells.len(),
                skipped,
                errors,
                warnings
            );
        }
    }
    let total_errors: usize = entries.iter().map(|e| e.error_count()).sum();
    for e in &entries {
        for d in &e.diagnostics {
            if d.severity == shredding::Severity::Error {
                eprintln!("  {} on {} ({}): {}", d.code, e.query, e.backend, d);
            }
        }
    }
    let json = bench::analyze_report_json(&entries);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);
    if total_errors > 0 {
        eprintln!(
            "static verification FAILED: {} error-severity diagnostics",
            total_errors
        );
        std::process::exit(1);
    }
    println!("static verification passed: 0 error-severity diagnostics");
}

/// The PR 7 observability sweep: every benchmark query executed with
/// per-operator profiling off and on (stage tracing runs in both modes),
/// results cross-checked against the nested reference semantics, plus the
/// per-stage and per-operator breakdowns read back from the session's
/// metrics registry. Writes the machine-readable report and fails the
/// process on any divergence or if profiling costs more than 10% over the
/// whole suite.
fn profile_report(path: &str, opts: &Options) {
    let instance = Instance::at_scale(opts.max_departments);
    println!(
        "\n=== Stage tracing + operator profiling overhead ({} departments, median of {}) ===",
        instance.departments, opts.runs
    );
    let report = bench::measure_profiling(&instance, opts.runs);
    println!(
        "{:<6} {:<7} {:>7} {:>10} {:>15} {:>13} {:>10}",
        "query", "kind", "stages", "operators", "unprofiled ms", "profiled ms", "overhead"
    );
    for row in &report.rows {
        println!(
            "{:<6} {:<7} {:>7} {:>10} {:>15.4} {:>13.4} {:>9.1}%",
            row.query,
            row.kind,
            row.stages,
            row.operators,
            row.unprofiled_ms,
            row.profiled_ms,
            row.overhead_pct()
        );
    }
    println!("\nPer-stage spans (session registry):");
    println!(
        "{:<12} {:>8} {:>11} {:>11}",
        "stage", "spans", "mean ms", "p95 ms"
    );
    for (stage, count, mean_ms, p95_ms) in &report.stages {
        println!(
            "{:<12} {:>8} {:>11.4} {:>11.4}",
            stage, count, mean_ms, p95_ms
        );
    }
    println!("\nPer-operator actuals (profiled runs):");
    println!("{:<16} {:>10} {:>11}", "operator", "execs", "total ms");
    for (op, count, total_ms) in &report.operators {
        println!("{:<16} {:>10} {:>11.4}", op, count, total_ms);
    }
    println!(
        "\nsuite totals: unprofiled {:.4} ms, profiled {:.4} ms, overhead {:.1}%",
        report.unprofiled_total_ms,
        report.profiled_total_ms,
        report.overhead_pct()
    );
    let json = bench::profile_report_json(&instance, opts.runs, &report);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);
    if report.any_divergence() {
        for row in report.rows.iter().filter(|r| r.diverged) {
            eprintln!(
                "FAIL: query {} returns a different result when profiled",
                row.query
            );
        }
        std::process::exit(1);
    }
    if report.overhead_pct() > 10.0 {
        eprintln!(
            "FAIL: per-operator profiling costs {:.1}% over the whole suite (limit 10%)",
            report.overhead_pct()
        );
        std::process::exit(1);
    }
}

/// The PR 8 incremental-maintenance comparison: every benchmark query kept
/// live by a subscription while a seeded mutation stream commits write
/// batches, per-batch maintenance work (delta propagation plus stitch-cache
/// invalidation, the storage write excluded from both sides) timed against
/// a full recompute of the same prepared query. Writes the machine-readable
/// report and fails the process if any live view diverges from the
/// recompute oracle, or — at the committed scale (16+ departments) — if
/// maintenance of a single-operation batch is not at least 5× faster than
/// recomputing a nested query from scratch. Queries that fall back to
/// re-seeding (correlated `EXISTS` over mutated tables is outside the
/// incremental fragment) are held to a no-collapse bar instead, and at
/// least four of the six nested queries must stay fully incremental so the
/// exemption cannot swallow the gate.
fn delta_report(path: &str, opts: &Options) {
    let batch_sizes = [1usize, 8, 64];
    // Per-batch maintenance cost is heavy-tailed (a delete that shifts many
    // ranks costs O(n), a localised insert costs microseconds), so the
    // median needs a real sample size to settle.
    let batches = (opts.runs * 16).max(32);
    println!(
        "\n=== Incremental maintenance vs. full recompute ({} departments, {} batches/cell) ===",
        opts.max_departments, batches
    );
    println!(
        "{:<6} {:<7} {:>6} {:>7} {:>15} {:>13} {:>9} {:>8}",
        "query", "kind", "batch", "Δ rows", "incremental ms", "recompute ms", "speedup", "reseeds"
    );
    let rows = bench::compare_delta(opts.max_departments, &batch_sizes, batches);
    for row in &rows {
        println!(
            "{:<6} {:<7} {:>6} {:>7} {:>15.4} {:>13.4} {:>8.1}x {:>8}",
            row.query,
            row.kind,
            row.batch_size,
            row.delta_rows,
            row.incremental_ms,
            row.recompute_ms,
            row.speedup(),
            row.reseeds,
        );
    }
    let json = bench::delta_report_json(opts.max_departments, batches, &rows);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);

    let mut failed = false;
    for row in rows.iter().filter(|r| r.diverged) {
        eprintln!(
            "FAIL: live view for {} (batch size {}) diverged from the recompute oracle",
            row.query, row.batch_size
        );
        failed = true;
    }
    let small = batch_sizes[0];
    let mut incremental_nested = 0usize;
    let mut nested_cells = 0usize;
    for row in rows
        .iter()
        .filter(|r| r.kind == "nested" && r.batch_size == small)
    {
        nested_cells += 1;
        let speedup = row.speedup();
        if row.reseeds == 0 {
            incremental_nested += 1;
        }
        if opts.max_departments >= 16 && row.reseeds == 0 {
            if speedup < 5.0 {
                eprintln!(
                    "FAIL: maintaining {} after a {}-op batch is only {:.1}x faster than \
                     full recompute (expected >= 5x)",
                    row.query, small, speedup
                );
                failed = true;
            }
        } else if speedup <= 0.5 {
            // Reseeding queries (and smoke scales, where absolute times are
            // microseconds of timer noise) are held to a no-collapse bar:
            // the fallback is a recompute, so it must not lose outright.
            eprintln!(
                "FAIL: maintaining {} after a {}-op batch collapsed to {:.1}x of \
                 full recompute ({} departments, {} reseeds)",
                row.query, small, speedup, opts.max_departments, row.reseeds
            );
            failed = true;
        }
    }
    if nested_cells > 0 && incremental_nested * 3 < nested_cells * 2 {
        eprintln!(
            "FAIL: only {} of {} nested queries stayed fully incremental \
             (no reseeds) on single-op batches",
            incremental_nested, nested_cells
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "incremental maintenance verified: live views match the recompute oracle on \
         every committed batch"
    );
}

/// The PR 9 morsel-parallelism smoke gate: every benchmark query's compiled
/// stages executed sequentially and morsel-parallel, with the parallel
/// results differentially checked at morsel sizes 1/7/4096 against the
/// `workers = 1` baseline (strict, order included) and against the
/// row-at-a-time interpreter (as a bag). Writes the machine-readable report
/// and fails the process on any divergence, on any morsel-size-dependent
/// answer, or — on hosts with at least 4 cores — if the heavy queries (Q2,
/// QF6) speed up by less than cores/2. On smaller hosts the scaling
/// assertion relaxes to a no-collapse check and the host's parallelism is
/// recorded in the report.
fn morsel_report(path: &str, opts: &Options) {
    let instance = Instance::at_scale(opts.max_departments);
    println!(
        "\n=== Morsel-parallel vs. sequential execution ({} departments, median of {}) ===",
        instance.departments, opts.runs
    );
    let report = bench::compare_morsel(&instance, opts.runs);
    println!(
        "{:<6} {:<7} {:>7} {:>12} {:>12} {:>9} {:>11} {:>8}",
        "query", "kind", "stages", "1-worker ms", "parallel ms", "speedup", "consistent", "oracle"
    );
    for row in &report.rows {
        println!(
            "{:<6} {:<7} {:>7} {:>12.4} {:>12.4} {:>8.2}x {:>11} {:>8}",
            row.query,
            row.kind,
            row.stages,
            row.single_ms,
            row.parallel_ms,
            row.speedup(),
            if row.consistent { "yes" } else { "NO" },
            if row.matches_oracle { "yes" } else { "NO" },
        );
    }
    println!(
        "workers: {}, host parallelism: {}, morsel sizes checked: {:?}",
        report.workers, report.available_parallelism, report.morsel_sizes
    );
    let json = bench::morsel_report_json(&report, opts.runs);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);

    let mut failed = false;
    for row in &report.rows {
        if !row.consistent {
            eprintln!(
                "FAIL: query {} returns a morsel-size-dependent answer",
                row.query
            );
            failed = true;
        }
        if !row.matches_oracle {
            eprintln!(
                "FAIL: query {} diverges from the interpreter oracle under parallelism",
                row.query
            );
            failed = true;
        }
    }
    // The scaling gate watches the two heaviest single queries of the suite.
    const HEAVY: [&str; 2] = ["Q2", "QF6"];
    for name in HEAVY {
        let Some(row) = report.rows.iter().find(|r| r.query == name) else {
            eprintln!("FAIL: heavy query {} missing from the sweep", name);
            failed = true;
            continue;
        };
        let speedup = row.speedup();
        if report.available_parallelism >= 4 {
            let floor = report.available_parallelism as f64 / 2.0;
            if speedup < floor {
                eprintln!(
                    "FAIL: {} speeds up only {:.2}x under {} workers on a {}-way host \
                     (expected >= {:.1}x)",
                    name, speedup, report.workers, report.available_parallelism, floor
                );
                failed = true;
            }
        } else if speedup <= 0.5 {
            // An under-provisioned host cannot scale; still refuse outright
            // collapse (parallel execution must not lose to sequential by 2x).
            eprintln!(
                "FAIL: {} collapsed to {:.2}x under {} workers on a {}-way host",
                name, speedup, report.workers, report.available_parallelism
            );
            failed = true;
        } else {
            println!(
                "note: host has {} core(s); morsel scaling assertion for {} relaxed to \
                 a no-collapse check ({:.2}x)",
                report.available_parallelism, name, speedup
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "morsel-parallel execution verified: identical answers at every morsel size \
         and worker count"
    );
}

/// The PR 10 logical-optimizer gate: every benchmark query executed through
/// an optimizing and a non-optimizing session over the same loaded engine,
/// answers differentially checked against each other and — per stage —
/// against the engine's row-at-a-time SQL interpreter (which never sees the
/// rewrites), median execution times compared per query. Writes the
/// machine-readable report and fails the process on any divergence, if —
/// at the committed scale (256+ departments) — decorrelation does not make
/// the doubly-correlated queries (Q2, QF6) at least 5× faster, or if the
/// rewrites cost more than 10% anywhere (sub-quarter-millisecond medians
/// are timer noise at smoke scales and exempt from the regression bar).
fn opt_report(path: &str, opts: &Options) {
    println!(
        "\n=== Logical optimizer: optimized vs. unoptimized plans ({} departments, median of {}) ===",
        opts.max_departments, opts.runs
    );
    let rows = bench::compare_opt(opts.max_departments, opts.runs);
    println!(
        "{:<6} {:<7} {:>7} {:>9} {:>15} {:>13} {:>9} {:>6} {:>8}",
        "query",
        "kind",
        "stages",
        "rewrites",
        "unoptimized ms",
        "optimized ms",
        "speedup",
        "agree",
        "oracle"
    );
    for row in &rows {
        println!(
            "{:<6} {:<7} {:>7} {:>9} {:>15.4} {:>13.4} {:>8.2}x {:>6} {:>8}",
            row.query,
            row.kind,
            row.stages,
            row.rewrites,
            row.unoptimized_ms,
            row.optimized_ms,
            row.speedup(),
            if row.agree { "yes" } else { "NO" },
            if row.matches_oracle { "yes" } else { "NO" },
        );
    }
    let json = bench::opt_report_json(opts.max_departments, opts.runs, &rows);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {}: {}", path, e);
        std::process::exit(1);
    }
    println!("wrote {}", path);

    let mut failed = false;
    for row in &rows {
        if !row.matches_oracle {
            eprintln!(
                "FAIL: the optimized plan for {} diverges from the interpreter oracle",
                row.query
            );
            failed = true;
        }
        if !row.agree {
            eprintln!(
                "FAIL: optimized and unoptimized plans for {} return different bags",
                row.query
            );
            failed = true;
        }
    }
    // The payoff gate watches the doubly-correlated queries, where
    // decorrelation turns O(n·m) nested-loop EXISTS probing into a hash
    // build + probe; the asymptotic gap needs real data to dominate.
    if opts.max_departments >= 256 {
        for name in ["Q2", "QF6"] {
            let Some(row) = rows.iter().find(|r| r.query == name) else {
                eprintln!("FAIL: heavy query {} missing from the sweep", name);
                failed = true;
                continue;
            };
            if row.speedup() < 5.0 {
                eprintln!(
                    "FAIL: decorrelating {} wins only {:.2}x at {} departments \
                     (expected >= 5x)",
                    name,
                    row.speedup(),
                    opts.max_departments
                );
                failed = true;
            }
        }
    }
    // The no-regression bar: rewrites must never lose more than 10%
    // anywhere. Medians under a quarter millisecond are timer noise.
    for row in &rows {
        if row.unoptimized_ms >= 0.25 && row.optimized_ms > row.unoptimized_ms * 1.1 {
            eprintln!(
                "FAIL: the optimizer regresses {} from {:.4} ms to {:.4} ms (> 1.1x)",
                row.query, row.unoptimized_ms, row.optimized_ms
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "logical optimizer verified: rewritten plans match the unoptimized plans and \
         the oracle on every query"
    );
}

fn main() {
    let opts = parse_args();
    let scales = department_scales(opts.max_departments);

    if opts.figure10 || opts.figure11 {
        println!(
            "generating organisation databases at department counts {:?} (seeded)…",
            scales
        );
    }
    let instances: Vec<Instance> = if opts.figure10 || opts.figure11 {
        scales.iter().map(|d| Instance::at_scale(*d)).collect()
    } else {
        Vec::new()
    };

    if opts.figure10 {
        run_figure(
            "Figure 10: flat queries (total time in ms)",
            datagen::queries::flat_queries(),
            &[System::Shredding, System::LoopLifting, System::Default],
            &opts,
            &instances,
        );
    }
    if opts.figure11 {
        run_figure(
            "Figure 11: nested queries (total time in ms)",
            datagen::queries::nested_queries(),
            &[System::Shredding, System::LoopLifting],
            &opts,
            &instances,
        );
        println!("\nNesting degree (number of flat queries emitted by shredding):");
        // A schema-only session: plans and explains without any data.
        let planner = shredding::session::Shredder::builder()
            .schema(datagen::organisation_schema())
            .build()
            .expect("a schema-only session is valid");
        for (name, q) in datagen::queries::nested_queries() {
            if let Ok(prepared) = planner.prepare(&q) {
                println!("  {}: {} queries", name, prepared.query_count());
            }
        }
    }
    if opts.appendix_a {
        appendix_a();
    }
    if let Some(path) = &opts.vexec_json {
        vexec_report(path, &opts);
    }
    if let Some(path) = &opts.params_json {
        params_report(path, &opts);
    }
    if let Some(path) = &opts.concurrency_json {
        concurrency_report(path, &opts);
    }
    if let Some(path) = &opts.stitch_json {
        stitch_report(path, &opts);
    }
    if let Some(path) = &opts.analyze_json {
        analyze_report(path);
    }
    if let Some(path) = &opts.profile_json {
        profile_report(path, &opts);
    }
    if let Some(path) = &opts.delta_json {
        delta_report(path, &opts);
    }
    if let Some(path) = &opts.morsel_json {
        morsel_report(path, &opts);
    }
    if let Some(path) = &opts.opt_json {
        opt_report(path, &opts);
    }
}
