//! Bench for Figure 11: the nested queries Q1–Q6 under query shredding and
//! the loop-lifting baseline.
//!
//! Q1 and Q6 are the paper's headline results: loop-lifting's `ROW_NUMBER`
//! over unreduced cross products makes them asymptotically slower, while
//! shredding's queries stay proportional to the data touched.
//!
//! ```sh
//! cargo bench --bench nested_queries
//! ```

use bench::{measure, micro, Instance, System};

fn main() {
    let instance = Instance::at_scale(4);
    println!("figure11_nested_queries (4 departments)");
    for (name, query) in datagen::queries::nested_queries() {
        for system in [System::Shredding, System::LoopLifting] {
            micro::run(&format!("{}/{}", name, system), 10, || {
                let m = measure(system, name, &query, &instance);
                assert!(m.error.is_none(), "{} failed under {}", name, system);
                m.result_scalars
            });
        }
    }
}
