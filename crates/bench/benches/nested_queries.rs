//! Criterion bench for Figure 11: the nested queries Q1–Q6 under query
//! shredding and the loop-lifting baseline.
//!
//! Q1 and Q6 are the paper's headline results: loop-lifting's `ROW_NUMBER`
//! over unreduced cross products makes them asymptotically slower, while
//! shredding's queries stay proportional to the data touched.

use bench::{measure, Instance, System};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn nested_queries(c: &mut Criterion) {
    let instance = Instance::at_scale(4);
    let mut group = c.benchmark_group("figure11_nested_queries");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for (name, query) in datagen::queries::nested_queries() {
        for system in [System::Shredding, System::LoopLifting] {
            group.bench_function(format!("{}/{}", name, system), |b| {
                b.iter(|| {
                    let m = measure(system, name, &query, &instance);
                    assert!(m.error.is_none(), "{} failed under {}", name, system);
                    m.result_scalars
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, nested_queries);
criterion_main!(benches);
