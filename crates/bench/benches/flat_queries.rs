//! Criterion bench for Figure 10: the flat queries QF1–QF6 under query
//! shredding, loop-lifting and Links' default flat evaluation.
//!
//! The Criterion runs measure a fixed, modest scale so the whole suite
//! finishes quickly; the `experiments` binary performs the full scaling
//! sweep of the paper.

use bench::{measure, Instance, System};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn flat_queries(c: &mut Criterion) {
    let instance = Instance::at_scale(8);
    let mut group = c.benchmark_group("figure10_flat_queries");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));
    for (name, query) in datagen::queries::flat_queries() {
        for system in [System::Shredding, System::LoopLifting, System::Default] {
            group.bench_function(format!("{}/{}", name, system), |b| {
                b.iter(|| {
                    let m = measure(system, name, &query, &instance);
                    assert!(m.error.is_none(), "{} failed under {}", name, system);
                    m.result_scalars
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, flat_queries);
criterion_main!(benches);
