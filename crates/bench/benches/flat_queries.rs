//! Bench for Figure 10: the flat queries QF1–QF6 under query shredding,
//! loop-lifting and Links' default flat evaluation.
//!
//! These runs measure a fixed, modest scale so the whole suite finishes
//! quickly; the `experiments` binary performs the full scaling sweep of the
//! paper.
//!
//! ```sh
//! cargo bench --bench flat_queries
//! ```

use bench::{measure, micro, Instance, System};

fn main() {
    let instance = Instance::at_scale(8);
    println!("figure10_flat_queries (8 departments)");
    for (name, query) in datagen::queries::flat_queries() {
        for system in [System::Shredding, System::LoopLifting, System::Default] {
            micro::run(&format!("{}/{}", name, system), 10, || {
                let m = measure(system, name, &query, &instance);
                assert!(m.error.is_none(), "{} failed under {}", name, system);
                m.result_scalars
            });
        }
    }
}
