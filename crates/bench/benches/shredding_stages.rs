//! Ablation benches: the cost of the individual shredding stages, the choice
//! of indexing scheme (canonical vs natural vs flat, Section 6), and the
//! Appendix A blow-up of Van den Bussche's simulation.

use baselines::vandenbussche as vdb;
use bench::Instance;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use shredding::semantics::IndexScheme;

fn stages(c: &mut Criterion) {
    let instance = Instance::at_scale(4);
    let schema = datagen::organisation_schema();
    let q6 = datagen::queries::q6();

    let mut group = c.benchmark_group("shredding_stages");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(1200));

    group.bench_function("normalise/Q6", |b| {
        b.iter(|| shredding::normalise(&q6, &schema).unwrap().branch_count())
    });
    group.bench_function("compile_to_sql/Q6", |b| {
        b.iter(|| shredding::compile(&q6, &schema).unwrap().query_count())
    });
    let compiled = shredding::compile(&q6, &schema).unwrap();
    group.bench_function("execute_and_stitch/Q6", |b| {
        b.iter(|| {
            shredding::pipeline::execute(&compiled, &instance.engine)
                .unwrap()
                .scalar_count()
        })
    });

    // Indexing-scheme ablation (in-memory shredded semantics, Section 6).
    for scheme in [IndexScheme::Canonical, IndexScheme::Flat, IndexScheme::Natural] {
        group.bench_function(format!("in_memory/{}/Q4", scheme), |b| {
            let q4 = datagen::queries::q4();
            b.iter(|| {
                shredding::run_in_memory(&q4, &schema, &instance.db, scheme)
                    .unwrap()
                    .scalar_count()
            })
        });
    }

    // Appendix A: the Van den Bussche simulation vs the shredded encoding.
    for n in [8usize, 16] {
        group.bench_function(format!("vdb_simulation/{}_rows", n), |b| {
            let (r, s) = vdb::scaled_instance(n, 2);
            b.iter(|| vdb::simulate_union(&r, &s).tuple_count())
        });
        group.bench_function(format!("shredded_union/{}_rows", n), |b| {
            let (r, s) = vdb::scaled_instance(n, 2);
            b.iter(|| r.union(&s).shredded_tuple_count())
        });
    }

    group.finish();
}

criterion_group!(benches, stages);
criterion_main!(benches);
