//! Ablation benches: the cost of the individual shredding stages, the choice
//! of indexing scheme (canonical vs natural vs flat, Section 6), and the
//! Appendix A blow-up of Van den Bussche's simulation.
//!
//! ```sh
//! cargo bench --bench shredding_stages
//! ```

use baselines::vandenbussche as vdb;
use bench::{micro, Instance};
use shredding::semantics::IndexScheme;
use shredding::session::{ShreddedMemoryBackend, Shredder};

fn main() {
    let instance = Instance::at_scale(4);
    let schema = datagen::organisation_schema();
    let q6 = datagen::queries::q6();

    println!("shredding_stages (4 departments)");

    micro::run("normalise/Q6", 10, || {
        shredding::normalise(&q6, &schema).unwrap().branch_count()
    });

    // A schema-only session with the cache disabled measures planning alone.
    let planner = Shredder::builder()
        .schema(schema.clone())
        .without_plan_cache()
        .build()
        .unwrap();
    micro::run("compile_to_sql/Q6", 10, || {
        planner.prepare(&q6).unwrap().query_count()
    });

    // With the plan cache on, repeated prepares skip recompilation entirely.
    let cached_planner = Shredder::builder().schema(schema.clone()).build().unwrap();
    cached_planner.prepare(&q6).unwrap();
    micro::run("compile_to_sql/Q6 (plan cache hit)", 10, || {
        cached_planner.prepare(&q6).unwrap().query_count()
    });

    let session = instance.session(bench::System::Shredding);
    let prepared = session.prepare_uncached(&q6).unwrap();
    micro::run("execute_and_stitch/Q6", 10, || {
        session.execute(&prepared).unwrap().scalar_count()
    });

    // Indexing-scheme ablation (in-memory shredded semantics, Section 6).
    let q4 = datagen::queries::q4();
    for scheme in IndexScheme::ALL {
        let in_memory = Shredder::builder()
            .database(instance.db().clone())
            .backend(Box::new(ShreddedMemoryBackend))
            .index_scheme(scheme)
            .without_plan_cache()
            .build()
            .unwrap();
        micro::run(&format!("in_memory/{}/Q4", scheme), 10, || {
            in_memory.run(&q4).unwrap().scalar_count()
        });
    }

    // Appendix A: the Van den Bussche simulation vs the shredded encoding.
    for n in [8usize, 16] {
        let (r, s) = vdb::scaled_instance(n, 2);
        micro::run(&format!("vdb_simulation/{}_rows", n), 10, || {
            vdb::simulate_union(&r, &s).tuple_count()
        });
        let (r, s) = vdb::scaled_instance(n, 2);
        micro::run(&format!("shredded_union/{}_rows", n), 10, || {
            r.union(&s).shredded_tuple_count()
        });
    }
}
