//! Differential suite for the logical optimizer phase (PR 10).
//!
//! Every benchmark query the paper evaluates (Q1–Q6 nested, QF1–QF6 flat)
//! runs three ways — optimized shredded pipeline, unoptimized shredded
//! pipeline, and the λNRC interpreter oracle — across all three
//! [`IndexScheme`]s and worker counts {1, 4}. The three answers must agree
//! as multisets. On top of the differential sweep, golden `explain()`
//! snapshots pin down that each rewrite family actually fires: EXISTS
//! lifting + decorrelation on Q2, predicate pushdown on Q6, and
//! package-level common-subplan sharing on Q1.

use datagen::{generate, OrgConfig};
use nrc::builder::*;
use nrc::Term;
use shredding::semantics::IndexScheme;
use shredding::session::Shredder;

/// A small but non-degenerate organisation: every table non-empty, tasks
/// sparse enough that EXISTS/NOT-EXISTS queries have both matching and
/// non-matching outer rows.
fn org_db() -> nrc::schema::Database {
    generate(&OrgConfig {
        departments: 6,
        employees_per_department: 6,
        contacts_per_department: 3,
        seed: 97,
        ..OrgConfig::default()
    })
}

/// All twelve benchmark queries: Q1–Q6 (nested) then QF1–QF6 (flat).
fn all_queries() -> Vec<(&'static str, Term)> {
    datagen::queries::nested_queries()
        .into_iter()
        .chain(datagen::queries::flat_queries())
        .collect()
}

fn session(
    db: &nrc::schema::Database,
    scheme: IndexScheme,
    workers: usize,
    optimize: bool,
) -> Shredder {
    Shredder::builder()
        .database(db.clone())
        .index_scheme(scheme)
        .workers(workers)
        // Disable the adaptive sequential gate so workers=4 genuinely
        // exercises the morsel path at test scale.
        .min_parallel_rows(0)
        .optimize(optimize)
        .build()
        .unwrap()
}

/// The tentpole guarantee: rewritten plans are observationally identical to
/// the plans they replace, under every index scheme and worker count.
#[test]
fn optimized_plans_agree_with_unoptimized_plans_and_the_oracle() {
    let db = org_db();
    let oracle_session = Shredder::builder().database(db.clone()).build().unwrap();
    for (name, q) in all_queries() {
        let reference = oracle_session.oracle(&q).unwrap();
        for scheme in IndexScheme::ALL {
            for workers in [1usize, 4] {
                let optimized = session(&db, scheme, workers, true).run(&q).unwrap();
                let unoptimized = session(&db, scheme, workers, false).run(&q).unwrap();
                assert!(
                    optimized.multiset_eq(&reference),
                    "{} optimized vs oracle (scheme {}, workers {})",
                    name,
                    scheme,
                    workers
                );
                assert!(
                    optimized.multiset_eq(&unoptimized),
                    "{} optimized vs unoptimized (scheme {}, workers {})",
                    name,
                    scheme,
                    workers
                );
            }
        }
    }
}

/// Renders the explain output for one query under the default (Flat) scheme.
fn explain_for(q: &Term, optimize: bool) -> String {
    let db = org_db();
    let shredder = Shredder::builder()
        .database(db)
        .optimize(optimize)
        .build()
        .unwrap();
    let prepared = shredder.prepare(q).unwrap();
    prepared.explain().to_string()
}

/// Q2 (departments with no employee lacking an "abstract" task) is the
/// doubly-correlated NOT-EXISTS query: both nesting levels must decorrelate
/// into hash anti-joins, which requires the double-negation fold and the
/// EXISTS-lift pass to fire first.
#[test]
fn q2_explain_shows_exists_lift_and_double_decorrelation() {
    let rendered = explain_for(&datagen::queries::q2(), true);
    assert!(
        rendered.contains("lifted 2 EXISTS conjunct(s) into semi-join nodes"),
        "missing EXISTS lift in:\n{}",
        rendered
    );
    assert_eq!(
        rendered
            .matches("decorrelated ExistsSemiJoin anti into HashSemiJoin")
            .count(),
        2,
        "expected both nesting levels decorrelated in:\n{}",
        rendered
    );
    // The rewritten plan itself: two stacked hash anti-joins, no
    // row-at-a-time EXISTS evaluation left anywhere. (Only the `> `-prefixed
    // physical-plan lines count — the SQL text above them renders the
    // pre-rewrite query, and the rewrite annotations name the old node.)
    let plan = physical_plan_lines(&rendered);
    assert_eq!(plan.matches("HashSemiJoin anti").count(), 2);
    assert!(
        !plan.contains("ExistsSemiJoin"),
        "plan kept a correlated node:\n{}",
        plan
    );
}

/// Just the rendered physical-plan lines (prefixed `  > `) of an explain.
fn physical_plan_lines(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|l| l.trim_start().starts_with('>'))
        .collect::<Vec<_>>()
        .join("\n")
}

/// QF6 ("employees with no tasks or a salary over 50k") unions two branches
/// inside a NOT EXISTS; both must decorrelate.
#[test]
fn qf6_explain_shows_decorrelation_over_a_union_build() {
    let rendered = explain_for(&datagen::queries::qf6(), true);
    assert_eq!(
        rendered
            .matches("decorrelated ExistsSemiJoin anti into HashSemiJoin")
            .count(),
        2,
        "expected both anti-joins decorrelated in:\n{}",
        rendered
    );
    let plan = physical_plan_lines(&rendered);
    assert!(
        !plan.contains("ExistsSemiJoin"),
        "plan kept a correlated node:\n{}",
        plan
    );
}

/// Q6's per-department salary predicates must migrate below the joins.
#[test]
fn q6_explain_shows_predicate_pushdown() {
    let rendered = explain_for(&datagen::queries::q6(), true);
    assert!(
        rendered.contains("predicate(s) toward scans"),
        "missing pushdown rewrite in:\n{}",
        rendered
    );
}

/// Q1's four stages share the same outer `WITH q AS (...)` definition; the
/// package-level CSE pass must hoist it into a shared subplan executed once.
#[test]
fn q1_explain_shows_cross_stage_subplan_sharing() {
    let rendered = explain_for(&datagen::queries::q1(), true);
    assert!(
        rendered.contains("bound `q` to package-shared subplan #0 (cross-stage CSE)"),
        "missing cross-stage CSE in:\n{}",
        rendered
    );
    assert!(
        rendered
            .matches("bound `q` to package-shared subplan #0 (cross-stage CSE)")
            .count()
            >= 2,
        "a shared subplan needs at least two consuming stages:\n{}",
        rendered
    );
}

/// With the optimizer off, no rewrite annotations appear anywhere.
#[test]
fn unoptimized_sessions_report_no_rewrites() {
    for q in [
        datagen::queries::q1(),
        datagen::queries::q2(),
        datagen::queries::q6(),
    ] {
        let rendered = explain_for(&q, false);
        assert!(
            !rendered.contains("rewrites:"),
            "optimize(false) still rewrote:\n{}",
            rendered
        );
    }
}

/// The golden snapshot: the full explain() rendering of Q2 under the default
/// scheme, pinned byte-for-byte so plan-shape regressions are loud. Refresh
/// with `UPDATE_GOLDEN=1 cargo test -p bench --test optimizer`.
#[test]
fn q2_explain_matches_the_golden_snapshot() {
    let rendered = explain_for(&datagen::queries::q2(), true);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/q2_explain.golden"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden snapshot exists");
    assert_eq!(
        rendered, golden,
        "Q2 explain drifted from the golden snapshot; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// A correlation the decorrelator cannot turn into hash keys (`<` instead of
/// `=`): the plan must keep the correlated semi-join, the analysis pass must
/// surface the O001 warning with the skip reason, and the un-rewritten plan
/// must still agree with the oracle.
#[test]
fn non_equality_correlation_is_skipped_and_diagnosed() {
    // Departments with an employee whose name sorts strictly below the
    // department's own name — correlated through `<`.
    let q = for_where(
        "d",
        table("departments"),
        not(is_empty(for_where(
            "e",
            table("employees"),
            lt(project(var("e"), "name"), project(var("d"), "name")),
            singleton(project(var("e"), "name")),
        ))),
        singleton(project(var("d"), "name")),
    );
    let db = org_db();
    let shredder = Shredder::builder()
        .database(db)
        .verify(true)
        .optimize(true)
        .build()
        .unwrap();
    let prepared = shredder.prepare(&q).unwrap();
    assert!(
        prepared
            .check()
            .has_code(shredding::analysis::codes::RETAINED_CORRELATED_SUBQUERY),
        "expected an O001 warning, got: {}",
        prepared.check()
    );
    let via_plan = shredder.execute(&prepared).unwrap();
    let reference = shredder.oracle(&q).unwrap();
    assert!(via_plan.multiset_eq(&reference));
}
