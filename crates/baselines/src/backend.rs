//! The paper's comparison systems as [`SqlBackend`] strategies, selectable
//! through `Shredder::builder().backend(..)` exactly like the built-in
//! backends:
//!
//! * [`LoopLiftBackend`] — Ferry-style loop-lifting (Figure 1(b)); correct
//!   but emits `ROW_NUMBER` over unreduced products.
//! * [`FlatDefaultBackend`] — Links' stock flat evaluation (Figure 1(a));
//!   rejects nested result types, exactly as stock Links does.
//! * [`VandenBusscheBackend`] — Van den Bussche's simulation of nested
//!   queries by flat queries without value invention; only sound for the
//!   Appendix A relation shape, and refuses multiset unions (whose
//!   simulation breaks bag semantics — the paper's Appendix A point).

use nrc::types::{BaseType, Type};
use nrc::value::Value;
use shredding::error::ShredError;
use shredding::session::{
    BackendPlan, Bindings, ExecContext, PlanRequest, SqlBackend, StageExplain,
};

use crate::flat_default::{compile_flat, execute_flat_bound, FlatCompiled};
use crate::looplift::{compile_looplift, execute_looplift_bound, LoopLiftedQuery};
use crate::vandenbussche::{encode, NestedRelation};

/// The loop-lifting baseline as a session backend (paper Figure 1(b)).
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopLiftBackend;

impl SqlBackend for LoopLiftBackend {
    fn name(&self) -> &'static str {
        "looplift"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        let compiled = compile_looplift(req.term, req.schema)?;
        let paths = req.result_type.paths();
        let stages = compiled
            .stages
            .annotations()
            .into_iter()
            .zip(paths)
            .map(|(stage, path)| StageExplain {
                path: path.to_string(),
                sql: Some(sqlengine::print_query(&stage.sql)),
                physical: None,
                columns: stage.layout.columns().to_vec(),
                rewrites: Vec::new(),
            })
            .collect();
        Ok(BackendPlan::new(stages, compiled))
    }

    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError> {
        let compiled: &LoopLiftedQuery = plan.downcast()?;
        let engine = cx.engine()?;
        let params = bindings.to_sql_params()?;
        // Sink-level timing: the baseline helper bundles execute + decode +
        // stitch, so the whole evaluation lands in one Execute span.
        shredding::obs::time_maybe(cx.obs(), shredding::obs::Stage::Execute, || {
            execute_looplift_bound(compiled, engine, &params)
        })
    }
}

/// Links' default flat evaluation as a session backend (paper Figure 1(a)).
/// Preparing a query with a nested result type fails with
/// [`ShredError::NotFlatNested`], mirroring stock Links.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatDefaultBackend;

impl SqlBackend for FlatDefaultBackend {
    fn name(&self) -> &'static str {
        "flat-default"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        let compiled = compile_flat(req.term, req.schema)?;
        let stages = vec![StageExplain {
            path: "ε".to_string(),
            sql: Some(sqlengine::print_query(&compiled.sql)),
            physical: None,
            columns: compiled.column_names(),
            rewrites: Vec::new(),
        }];
        Ok(BackendPlan::new(stages, compiled))
    }

    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError> {
        let compiled: &FlatCompiled = plan.downcast()?;
        let engine = cx.engine()?;
        let params = bindings.to_sql_params()?;
        shredding::obs::time_maybe(cx.obs(), shredding::obs::Stage::Execute, || {
            execute_flat_bound(compiled, engine, &params)
        })
    }
}

/// Van den Bussche's simulation as a session backend. The simulation
/// represents nested *set* relations by flat relations without value
/// invention; this backend supports queries whose result has the Appendix A
/// shape `Bag ⟨A: Int, B: Bag Int⟩` and routes their result through the flat
/// representation (encode → decode). Multiset unions are refused at prepare
/// time: simulating them multiplies multiplicities by the active-domain size
/// (see [`crate::vandenbussche::measure_blowup`]), which is exactly the
/// failure Appendix A demonstrates.
#[derive(Debug, Clone, Copy, Default)]
pub struct VandenBusscheBackend;

/// The result shape the simulation supports: `Bag ⟨A: Int, B: Bag Int⟩`.
fn is_appendix_a_shape(ty: &Type) -> bool {
    let Type::Bag(elem) = ty else { return false };
    let Type::Record(fields) = elem.as_ref() else {
        return false;
    };
    if fields.len() != 2 {
        return false;
    }
    let a = fields.iter().find(|(l, _)| l == "A");
    let b = fields.iter().find(|(l, _)| l == "B");
    matches!(a, Some((_, Type::Base(BaseType::Int))))
        && matches!(b, Some((_, t)) if matches!(t, Type::Bag(inner) if **inner == Type::Base(BaseType::Int)))
}

impl SqlBackend for VandenBusscheBackend {
    fn name(&self) -> &'static str {
        "vandenbussche"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        if !is_appendix_a_shape(req.result_type) {
            return Err(ShredError::NotFlatNested(format!(
                "the Van den Bussche simulation only supports the Appendix A shape \
                 Bag ⟨A: Int, B: Bag Int⟩, not {}",
                req.result_type
            )));
        }
        if req.normalised.branches.len() > 1 {
            return Err(ShredError::NotFlatNested(
                "the Van den Bussche simulation does not preserve multiset semantics \
                 for unions (Appendix A); use measure_blowup to quantify the failure"
                    .into(),
            ));
        }
        let stages = vec![
            StageExplain {
                path: "ε".to_string(),
                sql: None,
                physical: None,
                columns: vec!["A".into(), "id".into(), "id1".into(), "id2".into()],
                rewrites: Vec::new(),
            },
            StageExplain {
                path: "B".to_string(),
                sql: None,
                physical: None,
                columns: vec!["id".into(), "id1".into(), "id2".into(), "B".into()],
                rewrites: Vec::new(),
            },
        ];
        Ok(BackendPlan::new(stages, req.term.clone()))
    }

    fn execute(
        &self,
        plan: &BackendPlan,
        cx: &ExecContext<'_>,
        bindings: &Bindings,
    ) -> Result<Value, ShredError> {
        let term: &nrc::Term = plan.downcast()?;
        let value = shredding::obs::time_maybe(cx.obs(), shredding::obs::Stage::Execute, || {
            nrc::eval_with_params(term, cx.db()?, &bindings.to_value_map())
                .map_err(ShredError::Eval)
        })?;
        shredding::obs::time_maybe(cx.obs(), shredding::obs::Stage::Decode, || {
            let relation =
                NestedRelation::from_value(&value).map_err(|message| ShredError::Decode {
                    code: shredding::analysis::codes::DECODE_SHAPE_MISMATCH,
                    message,
                })?;
            // Round-trip through the simulation's flat representation.
            let decoded = encode(&relation).decode();
            Ok(decoded.to_value())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, OrgConfig};
    use nrc::builder::*;
    use nrc::schema::{Database, Schema, TableSchema};
    use shredding::session::Shredder;

    #[test]
    fn all_baseline_backends_are_send_sync() {
        // The `SqlBackend` trait requires `Send + Sync`; assert it holds for
        // the concrete baseline types (and their plan payloads, transitively,
        // via `BackendPlan::new`'s bound) so sessions using a baseline can be
        // shared across threads like the built-in backends.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LoopLiftBackend>();
        assert_send_sync::<FlatDefaultBackend>();
        assert_send_sync::<VandenBusscheBackend>();
        assert_send_sync::<Box<dyn SqlBackend>>();
    }

    #[test]
    fn looplift_backend_agrees_with_the_oracle_on_nested_queries() {
        let db = generate(&OrgConfig {
            departments: 3,
            employees_per_department: 5,
            contacts_per_department: 2,
            ..OrgConfig::default()
        });
        let session = Shredder::builder()
            .database(db)
            .backend(Box::new(LoopLiftBackend))
            .build()
            .unwrap();
        for (name, q) in datagen::queries::nested_queries() {
            let reference = session.oracle(&q).unwrap();
            let lifted = session.run(&q).unwrap();
            assert!(lifted.multiset_eq(&reference), "{} via loop-lifting", name);
        }
    }

    #[test]
    fn flat_backend_runs_flat_queries_and_rejects_nested_ones() {
        let db = generate(&OrgConfig::small());
        let session = Shredder::builder()
            .database(db)
            .backend(Box::new(FlatDefaultBackend))
            .build()
            .unwrap();
        for (name, q) in datagen::queries::flat_queries() {
            let reference = session.oracle(&q).unwrap();
            let flat = session.run(&q).unwrap();
            assert!(flat.multiset_eq(&reference), "{} via flat-default", name);
        }
        assert!(matches!(
            session.prepare(&datagen::queries::q4()),
            Err(ShredError::NotFlatNested(_))
        ));
    }

    fn appendix_a_db() -> Database {
        let schema = Schema::new()
            .with_table(TableSchema::new("r", vec![("a", nrc::BaseType::Int)]).with_key(vec!["a"]))
            .with_table(
                TableSchema::new(
                    "s",
                    vec![("a", nrc::BaseType::Int), ("b", nrc::BaseType::Int)],
                )
                .with_key(vec!["a", "b"]),
            );
        let mut db = Database::new(schema);
        for a in [1i64, 2] {
            db.insert_row("r", vec![("a", Value::Int(a))]).unwrap();
        }
        for (a, b) in [(1i64, 10i64), (1, 11), (2, 20)] {
            db.insert_row("s", vec![("a", Value::Int(a)), ("b", Value::Int(b))])
                .unwrap();
        }
        db
    }

    fn appendix_a_query() -> nrc::Term {
        for_in(
            "x",
            table("r"),
            singleton(record(vec![
                ("A", project(var("x"), "a")),
                (
                    "B",
                    for_where(
                        "y",
                        table("s"),
                        eq(project(var("y"), "a"), project(var("x"), "a")),
                        singleton(project(var("y"), "b")),
                    ),
                ),
            ])),
        )
    }

    #[test]
    fn vdb_backend_round_trips_the_appendix_a_shape() {
        let session = Shredder::builder()
            .database(appendix_a_db())
            .backend(Box::new(VandenBusscheBackend))
            .build()
            .unwrap();
        let q = appendix_a_query();
        let reference = session.oracle(&q).unwrap();
        let via_vdb = session.run(&q).unwrap();
        assert!(via_vdb.multiset_eq(&reference));
    }

    #[test]
    fn vdb_backend_refuses_other_result_shapes() {
        let db = generate(&OrgConfig::small());
        let session = Shredder::builder()
            .database(db)
            .backend(Box::new(VandenBusscheBackend))
            .build()
            .unwrap();
        assert!(matches!(
            session.prepare(&datagen::queries::q4()),
            Err(ShredError::NotFlatNested(_))
        ));
    }
}
