//! A loop-lifting baseline in the style of Ferry / Ulrich's Links backend.
//!
//! Ferry's loop-lifting translation [Grust et al., 2009/2010] numbers the
//! rows of every nesting level with OLAP operators (`ROW_NUMBER`,
//! `DENSE_RANK`) computed over the *iteration context* of the enclosing
//! comprehension, and then relies on the Pathfinder optimiser to push
//! selections below those operators. The paper's experiments show the
//! pathological case: for queries with several nesting levels (Q1, Q6)
//! Pathfinder cannot remove the cross products underneath the OLAP
//! operators, and evaluation blows up.
//!
//! This module reproduces exactly that query shape: it reuses the shredding
//! pipeline's per-level decomposition but emits SQL in which every
//! `ROW_NUMBER` is computed over the **unfiltered** product of the iteration
//! context with the current level's tables, with the level's predicates
//! applied only *above* the numbering operator (as loop-lifting does before
//! optimisation). The results are still correct — surrogates are assigned
//! consistently between parent and child queries — but the engine has to
//! materialise the cross products, which is the behaviour the paper measures.
//! Pathfinder itself (a full SQL:1999 algebraic optimiser) is out of scope;
//! see DESIGN.md for the substitution argument.

use nrc::schema::Schema;
use nrc::term::Term;
use nrc::types::Type;
use nrc::value::Value;
use shredding::error::ShredError;
use shredding::flatten::{value_to_sql, LeafKind, ResultLayout};
use shredding::letins::{IndexSource, LetBase, LetComp, LetInner, LetQuery, OUTER_VAR};
use shredding::nf::Generator;
use shredding::pipeline::{compile, CompiledQuery};
use shredding::semantics::{IndexScheme, ShredResult};
use shredding::shred::Package;
use shredding::stitch::stitch_rows;
use sqlengine::ast::{BinOp, Expr, Query, Select, TableSource};
use sqlengine::Engine;

/// Alias of the numbered subquery every loop-lifted block selects from.
const SUB: &str = "sub";
/// Column name of the surrogate produced for the current level.
const POS: &str = "pos";
/// Column name of the surrogate carried from the outer context.
const CTX: &str = "ctx_rn";

/// A query compiled with the loop-lifting baseline: one SQL query per bag
/// constructor, plus the layouts needed to decode and stitch the results.
#[derive(Debug, Clone)]
pub struct LoopLiftedQuery {
    pub result_type: Type,
    pub stages: Package<LoopLiftedStage>,
}

/// One loop-lifted SQL query and its decoding layout (shared by `Arc` with
/// the shredding pipeline's compiled stage it was derived from).
#[derive(Debug, Clone)]
pub struct LoopLiftedStage {
    pub sql: Query,
    pub layout: std::sync::Arc<ResultLayout>,
}

impl LoopLiftedQuery {
    /// The SQL text of every stage.
    pub fn sql_texts(&self) -> Vec<String> {
        self.stages
            .annotations()
            .into_iter()
            .map(|s| sqlengine::print_query(&s.sql))
            .collect()
    }
}

/// Compile a nested query with the loop-lifting baseline.
pub fn compile_looplift(term: &Term, schema: &Schema) -> Result<LoopLiftedQuery, ShredError> {
    let compiled: CompiledQuery = compile(term, schema)?;
    let stages = compiled.stages.try_map(&mut |stage| {
        let sql = lifted_sql(&stage.let_inserted, &stage.layout, schema)?;
        Ok::<LoopLiftedStage, ShredError>(LoopLiftedStage {
            sql,
            layout: stage.layout.clone(),
        })
    })?;
    Ok(LoopLiftedQuery {
        result_type: compiled.result_type,
        stages,
    })
}

/// Execute a loop-lifted query and stitch the results.
pub fn execute_looplift(compiled: &LoopLiftedQuery, engine: &Engine) -> Result<Value, ShredError> {
    execute_looplift_bound(compiled, engine, &sqlengine::ParamValues::new())
}

/// Execute a loop-lifted query with bound values for its `:name`
/// placeholders. The baseline stays on the row path — the engine's columnar
/// result is transposed back into rows (the column→row converter), decoded
/// row by row and stitched with the row-at-a-time stitcher — exactly the
/// result-assembly cost profile the paper's loop-lifting systems pay.
pub fn execute_looplift_bound(
    compiled: &LoopLiftedQuery,
    engine: &Engine,
    params: &sqlengine::ParamValues,
) -> Result<Value, ShredError> {
    let results: Package<ShredResult> =
        compiled.stages.try_map(&mut |stage: &LoopLiftedStage| {
            let rs = engine.execute_bound(&stage.sql, params)?.into_result_set();
            stage.layout.decode(&rs)
        })?;
    stitch_rows(results, IndexScheme::Flat)
}

/// Run a nested query end to end with the loop-lifting baseline.
pub fn run_looplift(term: &Term, schema: &Schema, engine: &Engine) -> Result<Value, ShredError> {
    let compiled = compile_looplift(term, schema)?;
    execute_looplift(&compiled, engine)
}

// ---------------------------------------------------------------------------
// SQL generation
// ---------------------------------------------------------------------------

fn lifted_sql(
    query: &LetQuery,
    layout: &ResultLayout,
    schema: &Schema,
) -> Result<Query, ShredError> {
    let branches = query
        .branches
        .iter()
        .map(|c| lifted_comp(c, layout, schema))
        .collect::<Result<Vec<_>, _>>()?;
    if branches.is_empty() {
        return Err(ShredError::Internal(
            "loop-lifting a query with no branches".to_string(),
        ));
    }
    Ok(Query::union_all(branches))
}

fn table_columns(schema: &Schema, table: &str) -> Result<Vec<String>, ShredError> {
    Ok(schema
        .table(table)
        .ok_or_else(|| ShredError::Internal(format!("unknown table {}", table)))?
        .columns
        .iter()
        .map(|(c, _)| c.clone())
        .collect())
}

/// The numbered inner subquery: all columns of the iteration context and the
/// current level's tables, cross-producted with *no* predicate, plus the
/// surrogate columns. Every predicate — including the outer levels' — is
/// applied above the numbering, so parent and child queries number the same
/// unfiltered products and their surrogates line up.
fn numbered_subquery(
    outer: Option<&[Generator]>,
    generators: &[Generator],
    schema: &Schema,
) -> Result<Select, ShredError> {
    let mut select = Select::new();
    let mut order_keys = Vec::new();

    // Context columns (from the numbered cross product of the outer
    // generators).
    if let Some(outer_gens) = outer {
        let ctx = context_subquery(outer_gens, schema)?;
        for (i, g) in outer_gens.iter().enumerate() {
            for col in table_columns(schema, &g.table)? {
                let name = format!("c{}_{}", i + 1, col);
                select = select.item(Expr::col(OUTER_VAR, &name), &name);
                order_keys.push(Expr::col(OUTER_VAR, &name));
            }
        }
        select = select.item(Expr::col(OUTER_VAR, CTX), CTX);
        order_keys.push(Expr::col(OUTER_VAR, CTX));
        select = select.from_item(
            TableSource::Subquery(Box::new(Query::select(ctx))),
            OUTER_VAR,
        );
    }

    // Current level's tables.
    for g in generators {
        for col in table_columns(schema, &g.table)? {
            let name = format!("{}_{}", g.var, col);
            select = select.item(Expr::col(&g.var, &col), &name);
            order_keys.push(Expr::col(&g.var, &col));
        }
        select = select.from_named(&g.table, &g.var);
    }

    let surrogate = if order_keys.is_empty() {
        Expr::lit(1i64)
    } else {
        Expr::row_number(order_keys)
    };
    select = select.item(surrogate, POS);
    Ok(select)
}

/// The iteration context of the outer generators: their unfiltered cross
/// product, numbered by all columns.
fn context_subquery(outer_gens: &[Generator], schema: &Schema) -> Result<Select, ShredError> {
    let mut inner = Select::new();
    let mut order_keys = Vec::new();
    for (i, g) in outer_gens.iter().enumerate() {
        for col in table_columns(schema, &g.table)? {
            let name = format!("c{}_{}", i + 1, col);
            inner = inner.item(Expr::col(&g.var, &col), &name);
            order_keys.push(Expr::col(&g.var, &col));
        }
        inner = inner.from_named(&g.table, &g.var);
    }
    inner = inner.item(Expr::row_number(order_keys), CTX);
    Ok(inner)
}

fn lifted_comp(
    comp: &LetComp,
    layout: &ResultLayout,
    schema: &Schema,
) -> Result<Query, ShredError> {
    let outer_gens: Option<&[Generator]> = comp.binding.as_ref().map(|b| b.generators.as_slice());
    let numbered = numbered_subquery(outer_gens, &comp.generators, schema)?;

    // The outer SELECT: project the layout columns from the numbered
    // subquery, applying the level's predicate above the numbering.
    let mut select = Select::new();
    let ordinal = if comp.binding.is_some() {
        Expr::col(SUB, CTX)
    } else {
        Expr::lit(1i64)
    };
    select = select
        .item(Expr::lit(comp.outer_tag.as_int()), "oidx_tag")
        .item(ordinal, "oidx_ord");
    let outer_gens_slice = outer_gens.unwrap_or(&[]);
    for leaf in &layout.leaves {
        let value = navigate(&comp.inner, &leaf.path)?;
        match (&leaf.kind, value) {
            (LeafKind::Base(_), LetInner::Base(b)) => {
                select = select.item(
                    lifted_expr(b, outer_gens_slice, &comp.generators, false, schema)?,
                    &leaf.name,
                );
            }
            (LeafKind::Index, LetInner::IndexPair { tag, source }) => {
                let ordinal = match source {
                    IndexSource::CurrentRow => Expr::col(SUB, POS),
                    IndexSource::OuterBinding => Expr::col(SUB, CTX),
                    IndexSource::One => Expr::lit(1i64),
                };
                select = select.item(Expr::lit(tag.as_int()), &format!("{}_tag", leaf.name));
                select = select.item(ordinal, &format!("{}_ord", leaf.name));
            }
            (kind, other) => {
                return Err(ShredError::Internal(format!(
                    "loop-lifted inner term {:?} does not match layout leaf {:?}",
                    other, kind
                )))
            }
        }
    }
    select = select.from_item(
        TableSource::Subquery(Box::new(Query::select(numbered))),
        SUB,
    );
    // Apply all predicates — the outer levels' and the innermost level's —
    // above the numbering operators.
    let mut predicates = Vec::new();
    if let Some(binding) = &comp.binding {
        if !binding.condition.is_truth() {
            predicates.push(lifted_expr(
                &binding.condition,
                outer_gens_slice,
                &comp.generators,
                true,
                schema,
            )?);
        }
    }
    if !comp.condition.is_truth() {
        predicates.push(lifted_expr(
            &comp.condition,
            outer_gens_slice,
            &comp.generators,
            false,
            schema,
        )?);
    }
    if !predicates.is_empty() {
        select = select.filter(Expr::conj(predicates));
    }
    Ok(Query::select(select))
}

fn navigate<'a>(inner: &'a LetInner, path: &[String]) -> Result<&'a LetInner, ShredError> {
    let mut current = inner;
    for label in path {
        match current {
            LetInner::Record(fields) => {
                current = fields
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, v)| v)
                    .ok_or_else(|| {
                        ShredError::Internal(format!("missing field {} in inner term", label))
                    })?;
            }
            other => {
                return Err(ShredError::Internal(format!(
                    "cannot navigate {} in {:?}",
                    label, other
                )))
            }
        }
    }
    Ok(current)
}

/// Translate a base expression into a reference over the numbered subquery's
/// flattened columns. `in_context` selects between the context subquery's
/// naming (`c{i}_{col}` directly) and the body's naming (same, via `sub`).
#[allow(clippy::only_used_in_recursion)]
fn lifted_expr(
    base: &LetBase,
    outer_gens: &[Generator],
    inner_gens: &[Generator],
    in_context: bool,
    schema: &Schema,
) -> Result<Expr, ShredError> {
    use nrc::term::{Constant, PrimOp};
    let column = |var: &str, field: &str| -> Result<Expr, ShredError> {
        // A reference to an inner generator's column or (inside the context
        // subquery) to an outer generator's column.
        if inner_gens.iter().any(|g| g.var == var) {
            return Ok(Expr::col(SUB, &format!("{}_{}", var, field)));
        }
        if let Some(i) = outer_gens.iter().position(|g| g.var == var) {
            return Ok(Expr::col(SUB, &format!("c{}_{}", i + 1, field)));
        }
        // A correlated reference from inside an EXISTS subquery to a table
        // alias of an enclosing block; leave it qualified as written.
        Ok(Expr::col(var, field))
    };
    Ok(match base {
        LetBase::Proj { var, path } if path.len() == 1 => column(var, &path[0])?,
        LetBase::Proj { var, path } if var == OUTER_VAR && path.len() == 3 => {
            let i: usize = path[1]
                .trim_start_matches('#')
                .parse()
                .map_err(|_| ShredError::Internal(format!("bad tuple label {}", path[1])))?;
            Expr::col(SUB, &format!("c{}_{}", i, path[2]))
        }
        LetBase::Proj { path, .. } => {
            return Err(ShredError::Internal(format!(
                "unexpected projection path {:?} in loop-lifting",
                path
            )))
        }
        LetBase::Const(c) => Expr::Literal(match c {
            Constant::Int(i) => value_to_sql(&Value::Int(*i))?,
            Constant::Bool(b) => value_to_sql(&Value::Bool(*b))?,
            Constant::String(s) => value_to_sql(&Value::string(s.as_str()))?,
            Constant::Unit => value_to_sql(&Value::Unit)?,
        }),
        LetBase::Param(name, _) => Expr::param(name),
        LetBase::Prim(PrimOp::Not, args) => Expr::not(lifted_expr(
            &args[0], outer_gens, inner_gens, in_context, schema,
        )?),
        LetBase::Prim(op, args) => {
            let binop = match op {
                PrimOp::Eq => BinOp::Eq,
                PrimOp::Neq => BinOp::Neq,
                PrimOp::Lt => BinOp::Lt,
                PrimOp::Gt => BinOp::Gt,
                PrimOp::Le => BinOp::Le,
                PrimOp::Ge => BinOp::Ge,
                PrimOp::And => BinOp::And,
                PrimOp::Or => BinOp::Or,
                PrimOp::Add => BinOp::Add,
                PrimOp::Sub => BinOp::Sub,
                PrimOp::Mul => BinOp::Mul,
                PrimOp::Div => BinOp::Div,
                PrimOp::Mod => BinOp::Mod,
                PrimOp::Concat => BinOp::Concat,
                PrimOp::Not => unreachable!("handled above"),
            };
            Expr::binop(
                binop,
                lifted_expr(&args[0], outer_gens, inner_gens, in_context, schema)?,
                lifted_expr(&args[1], outer_gens, inner_gens, in_context, schema)?,
            )
        }
        LetBase::IsEmpty(q) => {
            let mut subqueries = Vec::with_capacity(q.branches.len());
            for branch in &q.branches {
                let mut sub = Select::new().item(Expr::lit(1i64), "one");
                for g in &branch.generators {
                    sub = sub.from_named(&g.table, &g.var);
                }
                if !branch.condition.is_truth() {
                    // Inside the EXISTS subquery, references to the enclosing
                    // block's generators must go through the numbered
                    // subquery's columns; references to the subquery's own
                    // generators stay as they are.
                    sub = sub.filter(lifted_expr(
                        &branch.condition,
                        outer_gens,
                        inner_gens,
                        in_context,
                        schema,
                    )?);
                }
                subqueries.push(Query::select(sub));
            }
            if subqueries.is_empty() {
                Expr::lit(true)
            } else {
                Expr::not(Expr::Exists(Box::new(Query::union_all(subqueries))))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, organisation_schema, OrgConfig};
    use shredding::pipeline::engine_from_database;

    #[test]
    fn loop_lifting_agrees_with_the_nested_semantics_on_nested_queries() {
        let schema = organisation_schema();
        let db = generate(&OrgConfig {
            departments: 3,
            employees_per_department: 4,
            contacts_per_department: 2,
            ..OrgConfig::default()
        });
        let engine = engine_from_database(&db).unwrap();
        for (name, q) in [
            ("Q3", datagen::queries::q3()),
            ("Q4", datagen::queries::q4()),
            ("Q6", datagen::queries::q6()),
        ] {
            let reference = nrc::eval(&q, &db).unwrap();
            let lifted = run_looplift(&q, &schema, &engine)
                .unwrap_or_else(|e| panic!("{} failed: {}", name, e));
            assert!(
                lifted.multiset_eq(&reference),
                "{}: loop-lifting disagrees with the nested semantics",
                name
            );
        }
    }

    #[test]
    fn lifted_sql_numbers_rows_below_the_predicate() {
        let schema = organisation_schema();
        let compiled = compile_looplift(&datagen::queries::q4(), &schema).unwrap();
        let texts = compiled.sql_texts();
        // The inner query computes ROW_NUMBER inside a FROM-subquery and
        // filters outside it — the shape Pathfinder fails to simplify.
        assert!(texts[1].contains("ROW_NUMBER"));
        let inner = &texts[1];
        let pos_rn = inner.find("ROW_NUMBER").unwrap();
        let pos_where = inner.rfind("WHERE").unwrap();
        assert!(
            pos_rn < pos_where,
            "predicate should sit above the numbering"
        );
    }

    #[test]
    fn flat_queries_also_work_under_loop_lifting() {
        let schema = organisation_schema();
        let db = generate(&OrgConfig::small());
        let engine = engine_from_database(&db).unwrap();
        for (name, q) in datagen::queries::flat_queries() {
            let reference = nrc::eval(&q, &db).unwrap();
            let lifted = run_looplift(&q, &schema, &engine)
                .unwrap_or_else(|e| panic!("{} failed: {}", name, e));
            assert!(lifted.multiset_eq(&reference), "{} disagrees", name);
        }
    }
}
