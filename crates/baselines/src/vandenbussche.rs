//! Van den Bussche's simulation of nested queries by flat queries
//! (Appendix A of the paper).
//!
//! Van den Bussche [TCS 2001] proved that nested *set* queries can be
//! simulated by several flat queries without value invention (no
//! `ROW_NUMBER`), by using the active domain to mint identifiers for unions.
//! The paper's Appendix A shows why this does not carry over to *multisets*:
//! representing the union `R ⊎ S` of two nested relations requires pairing
//! one side with every element of the active domain and the other with every
//! *pair* of distinct elements, a quadratic blow-up that also breaks bag
//! semantics (evaluating `R ⊎ S` and `S ⊎ R` yields different multiplicities).
//!
//! This module reproduces that construction on the appendix's example and on
//! scaled instances, so the blow-up can be measured and compared with the
//! shredding representation (see the `shredding_stages` bench and the
//! `experiments --appendix-a` harness).

use nrc::value::Value;

/// A nested relation of type `Bag ⟨A: Int, B: Bag Int⟩`, the shape used in
/// Appendix A.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NestedRelation {
    /// Each row: the `A` value and the nested bag of `B` values.
    pub rows: Vec<(i64, Vec<i64>)>,
}

impl NestedRelation {
    pub fn new(rows: Vec<(i64, Vec<i64>)>) -> NestedRelation {
        NestedRelation { rows }
    }

    /// The multiset union of two nested relations (the correct semantics).
    pub fn union(&self, other: &NestedRelation) -> NestedRelation {
        let mut rows = self.rows.clone();
        rows.extend(other.rows.clone());
        NestedRelation { rows }
    }

    /// Total number of tuples in the natural two-table flat representation
    /// (one outer tuple per row plus one inner tuple per element), which is
    /// what query shredding produces.
    pub fn shredded_tuple_count(&self) -> usize {
        self.rows.len() + self.rows.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Read a nested value of shape `Bag ⟨A: Int, B: Bag Int⟩` back into a
    /// relation (the inverse of [`to_value`](Self::to_value)).
    pub fn from_value(value: &Value) -> Result<NestedRelation, String> {
        let bag = value
            .as_bag()
            .ok_or_else(|| "expected a bag at the top level".to_string())?;
        let mut rows = Vec::with_capacity(bag.len());
        for row in bag {
            let a = row
                .field("A")
                .and_then(|v| v.as_int())
                .ok_or_else(|| "row lacks an integer field A".to_string())?;
            let b = row
                .field("B")
                .and_then(|v| v.as_bag())
                .ok_or_else(|| "row lacks a bag field B".to_string())?;
            let elems = b
                .iter()
                .map(|v| {
                    v.as_int()
                        .ok_or_else(|| "B contains a non-integer".to_string())
                })
                .collect::<Result<Vec<i64>, String>>()?;
            rows.push((a, elems));
        }
        Ok(NestedRelation { rows })
    }

    /// The nested value this relation denotes.
    pub fn to_value(&self) -> Value {
        Value::Bag(
            self.rows
                .iter()
                .map(|(a, b)| {
                    Value::record(vec![
                        ("A", Value::Int(*a)),
                        ("B", Value::Bag(b.iter().map(|i| Value::Int(*i)).collect())),
                    ])
                })
                .collect(),
        )
    }
}

/// The flat representation used by Van den Bussche's simulation: an outer
/// table keyed by abstract ids and an inner table keyed by the same ids.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VdbRepresentation {
    /// Outer tuples `(A, id, id1, id2)`.
    pub outer: Vec<(i64, i64, i64, i64)>,
    /// Inner tuples `(id, id1, id2, B)`.
    pub inner: Vec<(i64, i64, i64, i64)>,
}

impl VdbRepresentation {
    /// Total number of tuples in the representation.
    pub fn tuple_count(&self) -> usize {
        self.outer.len() + self.inner.len()
    }

    /// Read a representation produced by [`encode`] back into the nested
    /// relation it denotes: inner tuples attach to the outer tuple whose id
    /// columns they repeat.
    pub fn decode(&self) -> NestedRelation {
        let rows = self
            .outer
            .iter()
            .map(|&(a, id, id1, id2)| {
                let elems = self
                    .inner
                    .iter()
                    .filter(|&&(iid, iid1, iid2, _)| (iid, iid1, iid2) == (id, id1, id2))
                    .map(|&(_, _, _, b)| b)
                    .collect();
                (a, elems)
            })
            .collect();
        NestedRelation { rows }
    }
}

/// Encode a single nested relation in the simulation's flat form (before any
/// union): ids are assigned per row, and the two extra id columns are equal
/// placeholders.
pub fn encode(relation: &NestedRelation) -> VdbRepresentation {
    let mut outer = Vec::new();
    let mut inner = Vec::new();
    for (i, (a, bs)) in relation.rows.iter().enumerate() {
        let id = i as i64 + 1;
        outer.push((*a, id, id, id));
        for b in bs {
            inner.push((id, id, id, *b));
        }
    }
    VdbRepresentation { outer, inner }
}

/// The active domain of a pair of nested relations: every base value
/// occurring in either, plus the ids used by their encodings.
pub fn active_domain(r: &NestedRelation, s: &NestedRelation) -> Vec<i64> {
    let mut adom = Vec::new();
    let mut push = |v: i64| {
        if !adom.contains(&v) {
            adom.push(v);
        }
    };
    for (i, (a, bs)) in r.rows.iter().chain(s.rows.iter()).enumerate() {
        push(*a);
        for b in bs {
            push(*b);
        }
        push(i as i64 + 1);
    }
    adom
}

/// Simulate the union `R ⊎ S` with Van den Bussche's construction: tuples
/// from `R` are paired with every `(x, x)` over the active domain and tuples
/// from `S` with every pair `(x, x')` of *distinct* elements, so that ids
/// never clash. The result is quadratically larger than the shredded
/// representation — and, read as a multiset, it is simply wrong (each tuple's
/// multiplicity is multiplied by `|adom|` or `|adom|²−|adom|`).
pub fn simulate_union(r: &NestedRelation, s: &NestedRelation) -> VdbRepresentation {
    let adom = active_domain(r, s);
    let re = encode(r);
    let se = encode(s);
    let mut out = VdbRepresentation::default();
    for &(a, id, _, _) in &re.outer {
        for &x in &adom {
            out.outer.push((a, id, x, x));
        }
    }
    for &(id, _, _, b) in &re.inner {
        for &x in &adom {
            out.inner.push((id, x, x, b));
        }
    }
    for &(a, id, _, _) in &se.outer {
        for &x in &adom {
            for &y in &adom {
                if x != y {
                    out.outer.push((a, id, x, y));
                }
            }
        }
    }
    for &(id, _, _, b) in &se.inner {
        for &x in &adom {
            for &y in &adom {
                if x != y {
                    out.inner.push((id, x, y, b));
                }
            }
        }
    }
    out
}

/// The Appendix A example instance: `R = {⟨1,{1}⟩, ⟨2,{2}⟩}` and
/// `S = {⟨1,{3,4}⟩, ⟨2,{2}⟩}`.
pub fn appendix_a_instance() -> (NestedRelation, NestedRelation) {
    (
        NestedRelation::new(vec![(1, vec![1]), (2, vec![2])]),
        NestedRelation::new(vec![(1, vec![3, 4]), (2, vec![2])]),
    )
}

/// A scaled instance with `n` outer rows per relation and `k` inner elements
/// per row, for measuring how the blow-up grows.
pub fn scaled_instance(n: usize, k: usize) -> (NestedRelation, NestedRelation) {
    let make = |offset: i64| {
        NestedRelation::new(
            (0..n)
                .map(|i| {
                    (
                        offset + i as i64,
                        (0..k).map(|j| offset * 1000 + (i * k + j) as i64).collect(),
                    )
                })
                .collect(),
        )
    };
    (make(1), make(100))
}

/// A measured comparison between the simulation and query shredding on a
/// union of two nested relations.
#[derive(Debug, Clone, PartialEq)]
pub struct BlowupReport {
    pub adom_size: usize,
    pub correct_tuples: usize,
    pub vdb_tuples: usize,
    pub blowup_factor: f64,
    /// Does the simulation preserve the multiset? (It never does unless one
    /// side is empty.)
    pub preserves_multiplicity: bool,
}

/// Measure the blow-up of simulating `R ⊎ S`.
pub fn measure_blowup(r: &NestedRelation, s: &NestedRelation) -> BlowupReport {
    let adom = active_domain(r, s);
    let correct = r.union(s).shredded_tuple_count();
    let vdb = simulate_union(r, s).tuple_count();
    BlowupReport {
        adom_size: adom.len(),
        correct_tuples: correct,
        vdb_tuples: vdb,
        blowup_factor: vdb as f64 / correct as f64,
        preserves_multiplicity: vdb == correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_a_union_has_nine_tuples_in_the_correct_representation() {
        let (r, s) = appendix_a_instance();
        // 4 outer rows + 5 inner elements = 9 tuples, as stated in the paper.
        assert_eq!(r.union(&s).shredded_tuple_count(), 9);
    }

    #[test]
    fn the_simulation_blows_up_quadratically_on_the_appendix_instance() {
        let (r, s) = appendix_a_instance();
        let report = measure_blowup(&r, &s);
        assert!(report.vdb_tuples > report.correct_tuples);
        assert!(!report.preserves_multiplicity);
        // O(|adom|·|R| + |adom|²·|S|): with |adom| = 6 this is far larger
        // than 9.
        assert!(report.blowup_factor > 5.0);
    }

    #[test]
    fn the_simulation_is_not_commutative_on_multisets() {
        let (r, s) = appendix_a_instance();
        let rs = simulate_union(&r, &s).tuple_count();
        let sr = simulate_union(&s, &r).tuple_count();
        assert_ne!(
            rs, sr,
            "R ⊎ S and S ⊎ R should have different simulated sizes (the paper's point)"
        );
    }

    #[test]
    fn blowup_grows_with_the_active_domain() {
        let (r1, s1) = scaled_instance(2, 2);
        let (r2, s2) = scaled_instance(8, 2);
        let small = measure_blowup(&r1, &s1);
        let big = measure_blowup(&r2, &s2);
        assert!(big.blowup_factor > small.blowup_factor);
    }

    #[test]
    fn union_to_value_round_trips() {
        let (r, s) = appendix_a_instance();
        let v = r.union(&s).to_value();
        assert_eq!(v.as_bag().unwrap().len(), 4);
    }
}
