//! Links' default flat query evaluation (Figure 1(a) of the paper).
//!
//! Links normalises a *flat–flat* query and converts it to a single SQL
//! query — no indexes, no `ROW_NUMBER`, no stitching. This is the baseline
//! the paper compares against for the flat queries QF1–QF6; nested queries
//! are rejected, exactly as stock Links rejects them.

use nrc::schema::Schema;
use nrc::term::Term;
use nrc::types::Type;
use nrc::value::Value;
use shredding::error::ShredError;
use shredding::flatten::sql_to_value;
use shredding::nf::{NfBase, NfTerm, NormQuery};
use shredding::normalise::normalise_with_type;
use sqlengine::ast::{BinOp, Expr, Query, Select};
use sqlengine::{Engine, ResultSet};

/// A flat query compiled to a single SQL statement.
#[derive(Debug, Clone)]
pub struct FlatCompiled {
    pub normalised: NormQuery,
    pub result_type: Type,
    pub sql: Query,
    columns: Vec<(String, nrc::BaseType)>,
}

/// Compile a flat–flat query to SQL. Returns an error if the query's result
/// type is nested (contains inner bags), mirroring Links' behaviour.
pub fn compile_flat(term: &Term, schema: &Schema) -> Result<FlatCompiled, ShredError> {
    let (normalised, result_type) = normalise_with_type(term, schema)?;
    let elem = match &result_type {
        Type::Bag(elem) => elem.as_ref(),
        other => return Err(ShredError::NotAQuery(other.to_string())),
    };
    if result_type.nesting_degree() != 1 {
        return Err(ShredError::NotFlatNested(format!(
            "default flat evaluation cannot handle nested result type {}",
            result_type
        )));
    }
    let columns = flat_columns(elem)?;
    let branches = normalised
        .branches
        .iter()
        .map(|comp| {
            let mut select = Select::new();
            for (name, _) in &columns {
                let field = match &comp.body {
                    NfTerm::Record(fields) => fields
                        .iter()
                        .find(|(l, _)| l == name)
                        .map(|(_, v)| v)
                        .ok_or_else(|| {
                            ShredError::Internal(format!("body missing field {}", name))
                        })?,
                    NfTerm::Base(_) if name == "item" => &comp.body,
                    other => {
                        return Err(ShredError::Internal(format!(
                            "unexpected flat body {:?}",
                            other
                        )))
                    }
                };
                let base = match field {
                    NfTerm::Base(b) => b,
                    other => {
                        return Err(ShredError::Internal(format!(
                            "flat query field {} is not base-typed: {:?}",
                            name, other
                        )))
                    }
                };
                select = select.item(expr_of_base(base)?, name);
            }
            for g in &comp.generators {
                select = select.from_named(&g.table, &g.var);
            }
            if !comp.condition.is_truth() {
                select = select.filter(expr_of_base(&comp.condition)?);
            }
            Ok(Query::select(select))
        })
        .collect::<Result<Vec<_>, ShredError>>()?;
    let sql = if branches.is_empty() {
        Query::select(
            columns
                .iter()
                .fold(Select::new(), |s, (name, _)| {
                    s.item(Expr::Literal(sqlengine::SqlValue::Null), name)
                })
                .filter(Expr::lit(false)),
        )
    } else {
        Query::union_all(branches)
    };
    Ok(FlatCompiled {
        normalised,
        result_type,
        sql,
        columns,
    })
}

impl FlatCompiled {
    /// The names of the flat result columns, in SQL order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|(name, _)| name.clone()).collect()
    }
}

/// Execute a compiled flat query and convert the rows back to λNRC values.
pub fn execute_flat(compiled: &FlatCompiled, engine: &Engine) -> Result<Value, ShredError> {
    execute_flat_bound(compiled, engine, &sqlengine::ParamValues::new())
}

/// Execute a compiled flat query with bound values for its `:name`
/// placeholders.
pub fn execute_flat_bound(
    compiled: &FlatCompiled,
    engine: &Engine,
    params: &sqlengine::ParamValues,
) -> Result<Value, ShredError> {
    // The flat baseline decodes rows; transpose the engine's columnar
    // result back (the column→row converter).
    let rs = engine
        .execute_bound(&compiled.sql, params)?
        .into_result_set();
    decode_flat(compiled, &rs)
}

/// Run a flat query end to end (compile, execute, decode).
pub fn run_flat(term: &Term, schema: &Schema, engine: &Engine) -> Result<Value, ShredError> {
    let compiled = compile_flat(term, schema)?;
    execute_flat(&compiled, engine)
}

fn decode_flat(compiled: &FlatCompiled, rs: &ResultSet) -> Result<Value, ShredError> {
    let single_base = matches!(compiled.result_type, Type::Bag(ref elem) if elem.is_base());
    let mut out = Vec::with_capacity(rs.rows.len());
    for row in &rs.rows {
        if single_base {
            let (_, ty) = &compiled.columns[0];
            out.push(sql_to_value(&row[0], *ty)?);
        } else {
            let mut fields = Vec::with_capacity(compiled.columns.len());
            for (i, (name, ty)) in compiled.columns.iter().enumerate() {
                fields.push((name.clone(), sql_to_value(&row[i], *ty)?));
            }
            out.push(Value::Record(fields));
        }
    }
    Ok(Value::Bag(out))
}

fn flat_columns(elem: &Type) -> Result<Vec<(String, nrc::BaseType)>, ShredError> {
    match elem {
        Type::Base(b) => Ok(vec![("item".to_string(), *b)]),
        Type::Record(fields) => fields
            .iter()
            .map(|(l, t)| match t {
                Type::Base(b) => Ok((l.clone(), *b)),
                other => Err(ShredError::NotFlatNested(other.to_string())),
            })
            .collect(),
        other => Err(ShredError::NotFlatNested(other.to_string())),
    }
}

fn expr_of_base(base: &NfBase) -> Result<Expr, ShredError> {
    use nrc::term::{Constant, PrimOp};
    Ok(match base {
        NfBase::Proj { var, field } => Expr::col(var, field),
        NfBase::Const(c) => Expr::Literal(match c {
            Constant::Int(i) => sqlengine::SqlValue::Int(*i),
            Constant::Bool(b) => sqlengine::SqlValue::Bool(*b),
            Constant::String(s) => sqlengine::SqlValue::str(s.clone()),
            Constant::Unit => sqlengine::SqlValue::Int(0),
        }),
        NfBase::Param(name, _) => Expr::param(name),
        NfBase::Prim(PrimOp::Not, args) => Expr::not(expr_of_base(&args[0])?),
        NfBase::Prim(op, args) => {
            let binop = match op {
                PrimOp::Eq => BinOp::Eq,
                PrimOp::Neq => BinOp::Neq,
                PrimOp::Lt => BinOp::Lt,
                PrimOp::Gt => BinOp::Gt,
                PrimOp::Le => BinOp::Le,
                PrimOp::Ge => BinOp::Ge,
                PrimOp::And => BinOp::And,
                PrimOp::Or => BinOp::Or,
                PrimOp::Add => BinOp::Add,
                PrimOp::Sub => BinOp::Sub,
                PrimOp::Mul => BinOp::Mul,
                PrimOp::Div => BinOp::Div,
                PrimOp::Mod => BinOp::Mod,
                PrimOp::Concat => BinOp::Concat,
                PrimOp::Not => unreachable!("handled above"),
            };
            Expr::binop(binop, expr_of_base(&args[0])?, expr_of_base(&args[1])?)
        }
        NfBase::IsEmpty(q) => {
            let mut subqueries = Vec::with_capacity(q.branches.len());
            for branch in &q.branches {
                let mut sub = Select::new().item(Expr::lit(1i64), "one");
                for g in &branch.generators {
                    sub = sub.from_named(&g.table, &g.var);
                }
                if !branch.condition.is_truth() {
                    sub = sub.filter(expr_of_base(&branch.condition)?);
                }
                subqueries.push(Query::select(sub));
            }
            if subqueries.is_empty() {
                Expr::lit(true)
            } else {
                Expr::not(Expr::Exists(Box::new(Query::union_all(subqueries))))
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, organisation_schema, OrgConfig};
    use shredding::pipeline::engine_from_database;

    #[test]
    fn flat_queries_match_the_nested_semantics() {
        let schema = organisation_schema();
        let db = generate(&OrgConfig::small());
        let engine = engine_from_database(&db).unwrap();
        for (name, q) in datagen::queries::flat_queries() {
            let reference = nrc::eval(&q, &db).unwrap();
            let flat =
                run_flat(&q, &schema, &engine).unwrap_or_else(|e| panic!("{} failed: {}", name, e));
            assert!(
                flat.multiset_eq(&reference),
                "{} disagrees with the nested semantics",
                name
            );
        }
    }

    #[test]
    fn nested_queries_are_rejected() {
        let schema = organisation_schema();
        let q = datagen::queries::q4();
        assert!(matches!(
            compile_flat(&q, &schema),
            Err(ShredError::NotFlatNested(_))
        ));
    }
}
