//! # baselines — the comparison systems of the SIGMOD 2014 evaluation
//!
//! The paper compares query shredding against three alternatives, all of
//! which are implemented here so the evaluation can be reproduced end to end:
//!
//! * [`flat_default`] — Links' stock behaviour (Figure 1(a)): flat–flat
//!   queries are normalised and sent to the database as a single SQL query;
//!   nested queries are rejected.
//! * [`looplift`] — a loop-lifting backend in the style of Ferry / Ulrich's
//!   implementation (Figure 1(b)): every nesting level is numbered with
//!   `ROW_NUMBER` over the *unreduced* iteration context, reproducing the
//!   query shapes whose cross products Pathfinder cannot remove (the Q1/Q6
//!   pathology of Section 8).
//! * [`vandenbussche`] — Van den Bussche's simulation of nested set queries
//!   by flat queries without value invention, and the Appendix A
//!   demonstration that it blows up quadratically and breaks bag semantics.

//!
//! Each system is also available as a [`shredding::session::SqlBackend`]
//! strategy ([`backend`]), so it can be selected through
//! `Shredder::builder().backend(..)` alongside the built-in backends.

#![forbid(unsafe_code)]

pub mod backend;
pub mod flat_default;
pub mod looplift;
pub mod vandenbussche;

pub use backend::{FlatDefaultBackend, LoopLiftBackend, VandenBusscheBackend};
pub use flat_default::{compile_flat, execute_flat, run_flat, FlatCompiled};
pub use looplift::{compile_looplift, execute_looplift, run_looplift, LoopLiftedQuery};
pub use vandenbussche::{measure_blowup, simulate_union, BlowupReport, NestedRelation};
