//! A small deterministic pseudo-random number generator.
//!
//! The generator is splitmix64 (Steele, Lea, Flood — "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): one 64-bit word of state,
//! full period, and statistically strong enough for workload generation. It
//! replaces an external RNG crate so the workspace builds with no
//! dependencies outside the standard library, and it keeps the guarantee the
//! evaluation relies on: the same seed always produces the same database.

/// A seeded splitmix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_inclusive_and_within_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.range_usize(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn floats_land_in_the_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
