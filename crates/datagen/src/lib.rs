//! # datagen — the organisation workload of the SIGMOD 2014 evaluation
//!
//! The paper evaluates shredding and loop-lifting on a synthetic
//! *organisation* database (Section 3 and Section 8):
//!
//! ```text
//! departments(id, name)
//! employees(id, dept, name, salary)
//! tasks(id, employee, task)
//! contacts(id, dept, name, client)
//! ```
//!
//! with the number of departments varied from 4 to 4096 (powers of two),
//! roughly 100 employees per department, 0–2 tasks per employee and a
//! handful of contacts per department. This crate generates that data
//! (seeded, so runs are reproducible) and defines the twelve benchmark
//! queries of Figures 8 and 9 as λNRC terms.

#![forbid(unsafe_code)]

pub mod generator;
pub mod mutations;
pub mod queries;
pub mod rng;

pub use generator::{generate, organisation_schema, OrgConfig};
pub use mutations::{MutationConfig, MutationStream};
pub use rng::Rng;
