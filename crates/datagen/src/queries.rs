//! The benchmark queries of the paper's evaluation: the flat queries QF1–QF6
//! (Figure 8) and the nested queries Q1–Q6 (Figure 9), plus the Section 3
//! building blocks they are defined from.
//!
//! All queries are expressed in λNRC over the organisation schema; the flat
//! queries of Figure 8 are given in SQL in the paper, and are rendered here as
//! the comprehensions a Links programmer would write for them (`MINUS` becomes
//! an emptiness test, which normalises to `NOT EXISTS`).

use nrc::builder::*;
use nrc::stdlib::{all, clients, contains, get_tasks, outliers};
use nrc::term::Term;

// ---------------------------------------------------------------------------
// Section 3 building blocks
// ---------------------------------------------------------------------------

/// `tasksOfEmp e = for (t ← tasks) where (t.employee = e.name) return t.task`.
pub fn tasks_of_emp(e: Term) -> Term {
    for_where(
        "t",
        table("tasks"),
        eq(project(var("t"), "employee"), project(e, "name")),
        singleton(project(var("t"), "task")),
    )
}

/// `contactsOfDept d`: the contacts of a department, with name and client
/// flag.
pub fn contacts_of_dept(d: Term) -> Term {
    for_where(
        "c",
        table("contacts"),
        eq(project(d, "name"), project(var("c"), "dept")),
        singleton(record(vec![
            ("name", project(var("c"), "name")),
            ("client", project(var("c"), "client")),
        ])),
    )
}

/// `employeesOfDept d`: the employees of a department, each with their tasks.
pub fn employees_of_dept(d: Term) -> Term {
    for_where(
        "e",
        table("employees"),
        eq(project(d, "name"), project(var("e"), "dept")),
        singleton(record(vec![
            ("name", project(var("e"), "name")),
            ("salary", project(var("e"), "salary")),
            ("tasks", tasks_of_emp(var("e"))),
        ])),
    )
}

/// `employeesByTask t`: the employees able to perform a task, with their
/// department.
pub fn employees_by_task(t: Term) -> Term {
    for_in(
        "e",
        table("employees"),
        for_where(
            "d",
            table("departments"),
            and(
                eq(project(var("e"), "name"), project(t, "employee")),
                eq(project(var("e"), "dept"), project(var("d"), "name")),
            ),
            singleton(record(vec![
                ("b", project(var("e"), "name")),
                ("c", project(var("d"), "name")),
            ])),
        ),
    )
}

/// `Qorg`: the nested organisation view (query Q1 of the evaluation).
pub fn q_org() -> Term {
    for_in(
        "d",
        table("departments"),
        singleton(record(vec![
            ("name", project(var("d"), "name")),
            ("employees", employees_of_dept(var("d"))),
            ("contacts", contacts_of_dept(var("d"))),
        ])),
    )
}

// ---------------------------------------------------------------------------
// Nested queries Q1–Q6 (Figure 9)
// ---------------------------------------------------------------------------

/// Q1: the organisation view `Qorg` itself (nesting degree 4).
pub fn q1() -> Term {
    q_org()
}

/// Q2: departments in which every employee can perform the "abstract" task —
/// a flat result computed *via* the nested view, exercising higher-order
/// functions and emptiness tests.
pub fn q2() -> Term {
    for_where(
        "d",
        q_org(),
        all(project(var("d"), "employees"), |x| {
            contains(project(x, "tasks"), string("abstract"))
        }),
        singleton(record(vec![("dept", project(var("d"), "name"))])),
    )
}

/// Q3: every employee with the bag of tasks they can perform.
pub fn q3() -> Term {
    for_in(
        "e",
        table("employees"),
        singleton(record(vec![
            ("name", project(var("e"), "name")),
            ("tasks", tasks_of_emp(var("e"))),
        ])),
    )
}

/// Q4: every department with the bag of its employees' names.
pub fn q4() -> Term {
    for_in(
        "d",
        table("departments"),
        singleton(record(vec![
            ("dept", project(var("d"), "name")),
            (
                "employees",
                for_where(
                    "e",
                    table("employees"),
                    eq(project(var("d"), "name"), project(var("e"), "dept")),
                    singleton(project(var("e"), "name")),
                ),
            ),
        ])),
    )
}

/// Q5: every task paired with the employees (and their departments) able to
/// perform it.
pub fn q5() -> Term {
    for_in(
        "t",
        table("tasks"),
        singleton(record(vec![
            ("a", project(var("t"), "task")),
            ("b", employees_by_task(var("t"))),
        ])),
    )
}

/// Q6: the outliers query Q of Section 3 — for each department, the poor and
/// rich employees with their tasks, together with the client contacts (whose
/// single task is "buy"). Composed with `Qorg`, this is the paper's `Qcomp`.
pub fn q6() -> Term {
    for_in(
        "x",
        q_org(),
        singleton(record(vec![
            ("department", project(var("x"), "name")),
            (
                "people",
                union(
                    get_tasks(outliers(project(var("x"), "employees")), |y| {
                        project(y, "tasks")
                    }),
                    get_tasks(clients(project(var("x"), "contacts")), |_| {
                        singleton(string("buy"))
                    }),
                ),
            ),
        ])),
    )
}

/// All nested benchmark queries, with their names.
pub fn nested_queries() -> Vec<(&'static str, Term)> {
    vec![
        ("Q1", q1()),
        ("Q2", q2()),
        ("Q3", q3()),
        ("Q4", q4()),
        ("Q5", q5()),
        ("Q6", q6()),
    ]
}

// ---------------------------------------------------------------------------
// Flat queries QF1–QF6 (Figure 8)
// ---------------------------------------------------------------------------

/// QF1: employees earning over 10 000.
pub fn qf1() -> Term {
    for_where(
        "e",
        table("employees"),
        gt(project(var("e"), "salary"), int(10000)),
        singleton(record(vec![("emp", project(var("e"), "name"))])),
    )
}

/// QF2: employees joined with their tasks.
pub fn qf2() -> Term {
    for_in(
        "e",
        table("employees"),
        for_where(
            "t",
            table("tasks"),
            eq(project(var("e"), "name"), project(var("t"), "employee")),
            singleton(record(vec![
                ("emp", project(var("e"), "name")),
                ("task", project(var("t"), "task")),
            ])),
        ),
    )
}

/// QF3: pairs of distinct employees in the same department with the same
/// salary.
pub fn qf3() -> Term {
    for_in(
        "e1",
        table("employees"),
        for_where(
            "e2",
            table("employees"),
            and(
                and(
                    eq(project(var("e1"), "dept"), project(var("e2"), "dept")),
                    eq(project(var("e1"), "salary"), project(var("e2"), "salary")),
                ),
                neq(project(var("e1"), "name"), project(var("e2"), "name")),
            ),
            singleton(record(vec![
                ("emp1", project(var("e1"), "name")),
                ("emp2", project(var("e2"), "name")),
            ])),
        ),
    )
}

/// The employees able to perform a given task (as ⟨emp⟩ records).
fn employees_with_task(task: &str) -> Term {
    for_where(
        "t",
        table("tasks"),
        eq(project(var("t"), "task"), string(task)),
        singleton(record(vec![("emp", project(var("t"), "employee"))])),
    )
}

/// The employees earning more than a threshold (as ⟨emp⟩ records).
fn employees_earning_over(threshold: i64) -> Term {
    for_where(
        "e",
        table("employees"),
        gt(project(var("e"), "salary"), int(threshold)),
        singleton(record(vec![("emp", project(var("e"), "name"))])),
    )
}

/// QF4: employees with the "abstract" task, together with employees earning
/// over 50 000 (`UNION ALL`).
pub fn qf4() -> Term {
    union(
        employees_with_task("abstract"),
        employees_earning_over(50000),
    )
}

/// QF5: employees with the "abstract" task who do *not* earn over 50 000
/// (the paper's `MINUS`, rendered as an emptiness test).
pub fn qf5() -> Term {
    for_where(
        "t",
        table("tasks"),
        and(
            eq(project(var("t"), "task"), string("abstract")),
            is_empty(for_where(
                "e",
                table("employees"),
                and(
                    gt(project(var("e"), "salary"), int(50000)),
                    eq(project(var("e"), "name"), project(var("t"), "employee")),
                ),
                singleton(record(vec![])),
            )),
        ),
        singleton(record(vec![("emp", project(var("t"), "employee"))])),
    )
}

/// QF6: the difference of two unions — (abstract-task ⊎ over-50 000) MINUS
/// (enthuse-task ⊎ over-10 000), again via an emptiness test.
pub fn qf6() -> Term {
    let left = union(
        employees_with_task("abstract"),
        employees_earning_over(50000),
    );
    let right = union(
        employees_with_task("enthuse"),
        employees_earning_over(10000),
    );
    for_where(
        "x",
        left,
        is_empty(for_where(
            "y",
            right,
            eq(project(var("y"), "emp"), project(var("x"), "emp")),
            singleton(record(vec![])),
        )),
        singleton(record(vec![("emp", project(var("x"), "emp"))])),
    )
}

/// All flat benchmark queries, with their names.
pub fn flat_queries() -> Vec<(&'static str, Term)> {
    vec![
        ("QF1", qf1()),
        ("QF2", qf2()),
        ("QF3", qf3()),
        ("QF4", qf4()),
        ("QF5", qf5()),
        ("QF6", qf6()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, organisation_schema, OrgConfig};
    use nrc::typecheck::typecheck;

    #[test]
    fn flat_queries_typecheck_with_flat_result_types() {
        let schema = organisation_schema();
        for (name, q) in flat_queries() {
            let rewritten = shredding::normalise::rewrite_to_normal_form(&q).unwrap();
            let ty = typecheck(&rewritten, &schema)
                .unwrap_or_else(|e| panic!("{} does not typecheck: {}", name, e));
            assert_eq!(ty.nesting_degree(), 1, "{} should be flat", name);
        }
    }

    #[test]
    fn nested_queries_typecheck_with_expected_nesting_degrees() {
        let schema = organisation_schema();
        let expected = [
            ("Q1", 4),
            ("Q2", 1),
            ("Q3", 2),
            ("Q4", 2),
            ("Q5", 2),
            ("Q6", 3),
        ];
        for ((name, q), (ename, degree)) in nested_queries().into_iter().zip(expected) {
            assert_eq!(name, ename);
            let rewritten = shredding::normalise::rewrite_to_normal_form(&q).unwrap();
            let ty = typecheck(&rewritten, &schema)
                .unwrap_or_else(|e| panic!("{} does not typecheck: {}", name, e));
            assert_eq!(ty.nesting_degree(), degree, "nesting degree of {}", name);
        }
    }

    #[test]
    fn every_benchmark_query_evaluates_on_a_small_instance() {
        let db = generate(&OrgConfig::small());
        for (name, q) in flat_queries().into_iter().chain(nested_queries()) {
            let v = nrc::eval(&q, &db).unwrap_or_else(|e| panic!("{} failed: {}", name, e));
            assert!(v.as_bag().is_some(), "{} should return a bag", name);
        }
    }

    #[test]
    fn qf5_excludes_high_earners() {
        let db = generate(&OrgConfig::small());
        let qf4 = nrc::eval(&qf4(), &db).unwrap();
        let qf5 = nrc::eval(&qf5(), &db).unwrap();
        assert!(qf5.as_bag().unwrap().len() <= qf4.as_bag().unwrap().len());
    }
}
