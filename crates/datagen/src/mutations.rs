//! Seeded mutation streams over the organisation schema.
//!
//! The incremental-maintenance experiments need a reproducible write
//! workload to drive live views with: a stream of [`WriteBatch`]es whose
//! operations always refer to rows that actually exist at the moment the
//! batch is committed. [`MutationStream`] generates one — seeded with the
//! same splitmix64 generator as the data itself, and *skewed* the way row
//! churn is in the paper's organisation: most writes hit the leaf tables
//! (`tasks`, `contacts`), updates outnumber inserts, and deletes are the
//! rarest, so nested result subtrees change a few groups at a time instead
//! of being rebuilt wholesale.
//!
//! The stream keeps an internal mirror of every table's live rows and folds
//! each emitted batch into it, so keyed updates and deletes are valid by
//! construction no matter how long the stream runs.

use crate::generator::TASK_NAMES;
use crate::rng::Rng;
use nrc::schema::Database;
use nrc::value::Value;
use sqlengine::{Row, SqlValue, WriteBatch};

/// Configuration of a mutation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationConfig {
    /// Operations per emitted batch.
    pub ops_per_batch: usize,
    /// Relative weight of updates in the op mix (the paper-style churn is
    /// update-heavy).
    pub update_weight: u32,
    /// Relative weight of inserts.
    pub insert_weight: u32,
    /// Relative weight of deletes.
    pub delete_weight: u32,
    /// Probability that an operation targets a leaf table (`tasks` or
    /// `contacts`) rather than `employees`/`departments`. Leaf writes leave
    /// the shared outer query of the shredded stages untouched, which is
    /// exactly the fast path of incremental maintenance.
    pub leaf_bias: f64,
    /// RNG seed; equal seeds yield identical streams over equal databases.
    pub seed: u64,
}

impl Default for MutationConfig {
    fn default() -> MutationConfig {
        MutationConfig {
            ops_per_batch: 8,
            update_weight: 5,
            insert_weight: 3,
            delete_weight: 2,
            leaf_bias: 0.8,
            seed: 42,
        }
    }
}

impl MutationConfig {
    /// A stream of single-operation batches (the finest write granularity).
    pub fn singleton(seed: u64) -> MutationConfig {
        MutationConfig {
            ops_per_batch: 1,
            seed,
            ..MutationConfig::default()
        }
    }
}

/// The in-memory mirror of one table: its live rows (schema column order)
/// and the next fresh primary key.
#[derive(Debug, Clone)]
struct TableMirror {
    rows: Vec<Row>,
    next_id: i64,
}

impl TableMirror {
    fn from_database(db: &Database, table: &str) -> TableMirror {
        let columns: Vec<String> = db
            .schema
            .table(table)
            .expect("organisation table exists")
            .columns
            .iter()
            .map(|(c, _)| c.clone())
            .collect();
        let mut rows = Vec::new();
        let mut next_id = 1i64;
        for value in db.table_rows_unordered(table).expect("table exists") {
            let row: Row = columns
                .iter()
                .map(|c| sql_cell(value.field(c).expect("row has schema columns")))
                .collect();
            if let Some(id) = row.first().and_then(SqlValue::as_int) {
                next_id = next_id.max(id + 1);
            }
            rows.push(row);
        }
        TableMirror { rows, next_id }
    }

    fn fresh_id(&mut self) -> i64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

fn sql_cell(v: &Value) -> SqlValue {
    if let Some(i) = v.as_int() {
        SqlValue::Int(i)
    } else if let Some(b) = v.as_bool() {
        SqlValue::Bool(b)
    } else if let Some(s) = v.as_str() {
        SqlValue::str(s)
    } else {
        panic!("organisation cells are base-typed")
    }
}

/// Mirror indices, fixed so the generated stream is stable.
const DEPARTMENTS: usize = 0;
const EMPLOYEES: usize = 1;
const TASKS: usize = 2;
const CONTACTS: usize = 3;
const TABLE_NAMES: [&str; 4] = ["departments", "employees", "tasks", "contacts"];

/// A seeded, self-consistent stream of write batches over an organisation
/// database. See the [module docs](self) for the skew model.
#[derive(Debug, Clone)]
pub struct MutationStream {
    config: MutationConfig,
    rng: Rng,
    tables: [TableMirror; 4],
}

impl MutationStream {
    /// Start a stream over the current contents of `db`. The stream
    /// snapshots the rows; commit each emitted batch before asking for the
    /// next one and the two stay in lockstep.
    pub fn over(db: &Database, config: MutationConfig) -> MutationStream {
        let rng = Rng::seed_from_u64(config.seed);
        MutationStream {
            config,
            rng,
            tables: TABLE_NAMES.map(|t| TableMirror::from_database(db, t)),
        }
    }

    /// The next write batch. Every operation refers to a row that is live
    /// after all preceding batches; the batch is folded into the stream's
    /// mirror as it is built.
    pub fn next_batch(&mut self) -> WriteBatch {
        let mut batch = WriteBatch::new();
        for _ in 0..self.config.ops_per_batch.max(1) {
            batch = self.next_op(batch);
        }
        batch
    }

    /// `count` batches, in order.
    pub fn batches(&mut self, count: usize) -> Vec<WriteBatch> {
        (0..count).map(|_| self.next_batch()).collect()
    }

    fn next_op(&mut self, batch: WriteBatch) -> WriteBatch {
        let table = self.pick_table();
        let total =
            self.config.update_weight + self.config.insert_weight + self.config.delete_weight;
        let roll = if total == 0 {
            0
        } else {
            (self.rng.next_u64() % u64::from(total)) as u32
        };
        if roll < self.config.update_weight && !self.tables[table].rows.is_empty() {
            self.update(table, batch)
        } else if roll < self.config.update_weight + self.config.insert_weight
            || self.tables[table].rows.is_empty()
        {
            self.insert(table, batch)
        } else {
            self.delete(table, batch)
        }
    }

    fn pick_table(&mut self) -> usize {
        if self.rng.chance(self.config.leaf_bias) {
            // Leaf tables carry most of the churn; tasks more than contacts.
            if self.rng.chance(0.7) {
                TASKS
            } else {
                CONTACTS
            }
        } else if self.rng.chance(0.8) {
            EMPLOYEES
        } else {
            DEPARTMENTS
        }
    }

    fn insert(&mut self, table: usize, batch: WriteBatch) -> WriteBatch {
        let row = match table {
            DEPARTMENTS => {
                let id = self.tables[DEPARTMENTS].fresh_id();
                vec![
                    SqlValue::Int(id),
                    SqlValue::str(format!("dept_live_{:05}", id)),
                ]
            }
            EMPLOYEES => {
                let dept = self.sample_cell(DEPARTMENTS, 1);
                let id = self.tables[EMPLOYEES].fresh_id();
                let salary = self.rng.range_i64(100, 2_999_999);
                vec![
                    SqlValue::Int(id),
                    dept,
                    SqlValue::str(format!("emp_live_{:07}", id)),
                    SqlValue::Int(salary),
                ]
            }
            TASKS => {
                let employee = self.sample_cell(EMPLOYEES, 2);
                let id = self.tables[TASKS].fresh_id();
                let task = TASK_NAMES[self.rng.range_usize(0, TASK_NAMES.len() - 1)];
                vec![SqlValue::Int(id), employee, SqlValue::str(task)]
            }
            _ => {
                let dept = self.sample_cell(DEPARTMENTS, 1);
                let id = self.tables[CONTACTS].fresh_id();
                let client = self.rng.chance(0.3);
                vec![
                    SqlValue::Int(id),
                    dept,
                    SqlValue::str(format!("contact_live_{:06}", id)),
                    SqlValue::Bool(client),
                ]
            }
        };
        self.tables[table].rows.push(row.clone());
        batch.insert(TABLE_NAMES[table], row)
    }

    fn update(&mut self, table: usize, batch: WriteBatch) -> WriteBatch {
        let i = self.pick_row(table);
        let mut row = self.tables[table].rows[i].clone();
        match table {
            DEPARTMENTS => {
                // Renaming a department would orphan its employees' `dept`
                // references, so a department "update" rewrites the row
                // unchanged — a keyed no-op the delta layer cancels away.
            }
            EMPLOYEES => {
                let salary = self.rng.range_i64(100, 2_999_999);
                row[3] = SqlValue::Int(salary);
            }
            TASKS => {
                let task = TASK_NAMES[self.rng.range_usize(0, TASK_NAMES.len() - 1)];
                row[2] = SqlValue::str(task);
            }
            _ => {
                let client = !matches!(row[3], SqlValue::Bool(true));
                row[3] = SqlValue::Bool(client);
            }
        }
        let key = vec![row[0].clone()];
        self.tables[table].rows[i] = row.clone();
        batch.update(TABLE_NAMES[table], key, row)
    }

    fn delete(&mut self, table: usize, batch: WriteBatch) -> WriteBatch {
        let i = self.pick_row(table);
        let row = self.tables[table].rows.swap_remove(i);
        batch.delete_by_key(TABLE_NAMES[table], vec![row[0].clone()])
    }

    fn pick_row(&mut self, table: usize) -> usize {
        let len = self.tables[table].rows.len();
        debug_assert!(len > 0, "callers guard against empty tables");
        self.rng.range_usize(0, len - 1)
    }

    /// A random existing row's cell, or a synthetic value if the referenced
    /// table is empty (possible only after heavy deletion).
    fn sample_cell(&mut self, table: usize, col: usize) -> SqlValue {
        if self.tables[table].rows.is_empty() {
            return SqlValue::str("orphan");
        }
        let i = self.pick_row(table);
        self.tables[table].rows[i][col].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, OrgConfig};
    use sqlengine::WriteOp;

    fn stream() -> MutationStream {
        let db = generate(&OrgConfig::small());
        MutationStream::over(&db, MutationConfig::default())
    }

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = stream();
        let mut b = stream();
        assert_eq!(a.batches(10), b.batches(10));
    }

    #[test]
    fn different_seeds_differ() {
        let db = generate(&OrgConfig::small());
        let mut a = MutationStream::over(&db, MutationConfig::default());
        let mut b = MutationStream::over(
            &db,
            MutationConfig {
                seed: 7,
                ..MutationConfig::default()
            },
        );
        assert_ne!(a.batches(10), b.batches(10));
    }

    #[test]
    fn the_mix_is_skewed_toward_leaf_table_updates() {
        let mut s = stream();
        let mut leaf = 0usize;
        let mut other = 0usize;
        let mut updates = 0usize;
        let mut deletes = 0usize;
        for batch in s.batches(100) {
            for op in &batch.ops {
                let (table, is_update, is_delete) = match op {
                    WriteOp::Insert { table, .. } => (table.as_str(), false, false),
                    WriteOp::Update { table, .. } => (table.as_str(), true, false),
                    WriteOp::Delete { table, .. } | WriteOp::DeleteByKey { table, .. } => {
                        (table.as_str(), false, true)
                    }
                };
                if table == "tasks" || table == "contacts" {
                    leaf += 1;
                } else {
                    other += 1;
                }
                updates += usize::from(is_update);
                deletes += usize::from(is_delete);
            }
        }
        assert!(
            leaf > other * 2,
            "leaf writes should dominate: {leaf} vs {other}"
        );
        assert!(updates > deletes, "updates should outnumber deletes");
    }

    #[test]
    fn every_batch_applies_cleanly_in_sequence() {
        // The real validity check: a long stream commits without a single
        // missing-row or unknown-key error against actual engine storage.
        let db = generate(&OrgConfig::small());
        let mut stream = MutationStream::over(&db, MutationConfig::default());
        let storage = organisation_storage(&db);
        let engine = sqlengine::Engine::with_storage(storage);
        for batch in stream.batches(200) {
            engine
                .apply_batch(&batch)
                .expect("stream batches stay valid");
        }
    }

    /// Build engine storage for the organisation database (the datagen crate
    /// cannot depend on `shredding`'s loader without a cycle, so the tests
    /// re-derive it from the schema).
    fn organisation_storage(db: &Database) -> sqlengine::Storage {
        use sqlengine::{ColumnType, Storage, TableDef};
        let mut storage = Storage::new();
        for table in db.schema.tables() {
            let cols: Vec<(&str, ColumnType)> = table
                .columns
                .iter()
                .map(|(c, t)| {
                    (
                        c.as_str(),
                        match t {
                            nrc::types::BaseType::Int => ColumnType::Int,
                            nrc::types::BaseType::Bool => ColumnType::Bool,
                            nrc::types::BaseType::String => ColumnType::Text,
                            nrc::types::BaseType::Unit => ColumnType::Int,
                        },
                    )
                })
                .collect();
            let mut def = TableDef::new(&table.name, cols);
            if table.has_key() {
                def = def.with_key(table.key.iter().map(String::as_str).collect());
            }
            storage.create_table(def).unwrap();
            for value in db.table_rows_unordered(&table.name).unwrap() {
                let row: Row = table
                    .columns
                    .iter()
                    .map(|(c, _)| sql_cell(value.field(c).unwrap()))
                    .collect();
                storage.insert(&table.name, row).unwrap();
            }
        }
        storage
    }
}
