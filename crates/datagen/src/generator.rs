//! Seeded generation of the organisation database.

use crate::rng::Rng;
use nrc::schema::{Database, Schema, TableSchema};
use nrc::types::BaseType;
use nrc::value::Value;

/// The task vocabulary used by the paper's examples.
pub const TASK_NAMES: &[&str] = &[
    "abstract",
    "build",
    "call",
    "dissemble",
    "enthuse",
    "buy",
    "sell",
    "plan",
];

/// Configuration of the generated organisation.
#[derive(Debug, Clone, PartialEq)]
pub struct OrgConfig {
    /// Number of departments (the paper varies this from 4 to 4096).
    pub departments: usize,
    /// Average number of employees per department (the paper uses 100).
    pub employees_per_department: usize,
    /// Maximum number of tasks per employee (the paper uses 0–2).
    pub max_tasks_per_employee: usize,
    /// Number of external contacts per department.
    pub contacts_per_department: usize,
    /// Probability that a contact is a client.
    pub client_probability: f64,
    /// Probability that an employee is "poor" (salary < 1000).
    pub poor_probability: f64,
    /// Probability that an employee is "rich" (salary > 1 000 000).
    pub rich_probability: f64,
    /// RNG seed; the same seed always produces the same database.
    pub seed: u64,
}

impl Default for OrgConfig {
    fn default() -> OrgConfig {
        OrgConfig {
            departments: 16,
            employees_per_department: 100,
            max_tasks_per_employee: 2,
            contacts_per_department: 10,
            client_probability: 0.3,
            poor_probability: 0.05,
            rich_probability: 0.05,
            seed: 42,
        }
    }
}

impl OrgConfig {
    /// The configuration used by the paper's scaling experiments, at a given
    /// department count.
    pub fn paper(departments: usize) -> OrgConfig {
        OrgConfig {
            departments,
            ..OrgConfig::default()
        }
    }

    /// A small configuration for unit tests and examples (fast to evaluate
    /// even with the naive nested semantics).
    pub fn small() -> OrgConfig {
        OrgConfig {
            departments: 4,
            employees_per_department: 8,
            contacts_per_department: 4,
            ..OrgConfig::default()
        }
    }
}

/// The flat organisation schema Σ of Section 3.
pub fn organisation_schema() -> Schema {
    Schema::new()
        .with_table(
            TableSchema::new(
                "departments",
                vec![("id", BaseType::Int), ("name", BaseType::String)],
            )
            .with_key(vec!["id"]),
        )
        .with_table(
            TableSchema::new(
                "employees",
                vec![
                    ("id", BaseType::Int),
                    ("dept", BaseType::String),
                    ("name", BaseType::String),
                    ("salary", BaseType::Int),
                ],
            )
            .with_key(vec!["id"]),
        )
        .with_table(
            TableSchema::new(
                "tasks",
                vec![
                    ("id", BaseType::Int),
                    ("employee", BaseType::String),
                    ("task", BaseType::String),
                ],
            )
            .with_key(vec!["id"]),
        )
        .with_table(
            TableSchema::new(
                "contacts",
                vec![
                    ("id", BaseType::Int),
                    ("dept", BaseType::String),
                    ("name", BaseType::String),
                    ("client", BaseType::Bool),
                ],
            )
            .with_key(vec!["id"]),
        )
}

/// Generate an organisation database according to the configuration.
///
/// Generation is linear in the total row count: rows are buffered per table
/// and loaded with [`Database::insert_bulk`], which validates the whole
/// batch against one precomputed row type — so scaling to 256+ departments
/// costs proportionally more rows, not proportionally more per-row setup.
pub fn generate(config: &OrgConfig) -> Database {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut db = Database::new(organisation_schema());
    let mut employee_id = 0i64;
    let mut task_id = 0i64;
    let mut contact_id = 0i64;

    let mut departments: Vec<Value> = Vec::with_capacity(config.departments);
    let mut employees: Vec<Value> =
        Vec::with_capacity(config.departments * config.employees_per_department);
    let mut tasks: Vec<Value> = Vec::new();
    let mut contacts: Vec<Value> =
        Vec::with_capacity(config.departments * config.contacts_per_department);

    for d in 0..config.departments {
        let dept_name = format!("dept_{:05}", d);
        departments.push(Value::record(vec![
            ("id", Value::Int(d as i64 + 1)),
            ("name", Value::string(dept_name.clone())),
        ]));

        // Employee count fluctuates around the configured average, as in the
        // paper ("each department has on average 100 employees").
        let min = config
            .employees_per_department
            .saturating_sub(config.employees_per_department / 4);
        let max = config.employees_per_department + config.employees_per_department / 4;
        let employee_count = if max > min {
            rng.range_usize(min, max)
        } else {
            config.employees_per_department
        };
        for _ in 0..employee_count.max(1) {
            employee_id += 1;
            let name = format!("emp_{:07}", employee_id);
            let salary = sample_salary(&mut rng, config);
            employees.push(Value::record(vec![
                ("id", Value::Int(employee_id)),
                ("dept", Value::string(dept_name.clone())),
                ("name", Value::string(name.clone())),
                ("salary", Value::Int(salary)),
            ]));

            let task_count = rng.range_usize(0, config.max_tasks_per_employee);
            for t in 0..task_count {
                task_id += 1;
                let task =
                    TASK_NAMES[(rng.range_usize(0, TASK_NAMES.len() - 1) + t) % TASK_NAMES.len()];
                tasks.push(Value::record(vec![
                    ("id", Value::Int(task_id)),
                    ("employee", Value::string(name.clone())),
                    ("task", Value::string(task)),
                ]));
            }
        }

        for _ in 0..config.contacts_per_department {
            contact_id += 1;
            let client = rng.chance(config.client_probability);
            contacts.push(Value::record(vec![
                ("id", Value::Int(contact_id)),
                ("dept", Value::string(dept_name.clone())),
                ("name", Value::string(format!("contact_{:06}", contact_id))),
                ("client", Value::Bool(client)),
            ]));
        }
    }
    db.insert_bulk("departments", departments)
        .expect("department rows match schema");
    db.insert_bulk("employees", employees)
        .expect("employee rows match schema");
    db.insert_bulk("tasks", tasks)
        .expect("task rows match schema");
    db.insert_bulk("contacts", contacts)
        .expect("contact rows match schema");
    db
}

fn sample_salary(rng: &mut Rng, config: &OrgConfig) -> i64 {
    let r: f64 = rng.next_f64();
    if r < config.poor_probability {
        // "Poor": below the 1000 threshold used by the outliers query.
        rng.range_i64(100, 999)
    } else if r < config.poor_probability + config.rich_probability {
        // "Rich": above the 1 000 000 threshold.
        rng.range_i64(1_000_001, 2_999_999)
    } else {
        rng.range_i64(1_000, 99_999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(&OrgConfig::small());
        let b = generate(&OrgConfig::small());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&OrgConfig::small());
        let b = generate(&OrgConfig {
            seed: 7,
            ..OrgConfig::small()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn department_count_matches_config() {
        let db = generate(&OrgConfig::small());
        assert_eq!(db.row_count("departments"), 4);
        assert!(db.row_count("employees") >= 4);
        assert_eq!(db.row_count("contacts"), 16);
    }

    #[test]
    fn salaries_cover_poor_normal_and_rich() {
        let db = generate(&OrgConfig {
            departments: 8,
            employees_per_department: 200,
            ..OrgConfig::default()
        });
        let rows = db.table_rows_unordered("employees").unwrap();
        let salaries: Vec<i64> = rows
            .iter()
            .map(|r| r.field("salary").unwrap().as_int().unwrap())
            .collect();
        assert!(
            salaries.iter().any(|s| *s < 1000),
            "expected some poor employees"
        );
        assert!(
            salaries.iter().any(|s| *s > 1_000_000),
            "expected some rich employees"
        );
        assert!(salaries.iter().any(|s| *s >= 1000 && *s <= 1_000_000));
    }

    #[test]
    fn tasks_reference_existing_employees() {
        let db = generate(&OrgConfig::small());
        let employee_names: Vec<String> = db
            .table_rows_unordered("employees")
            .unwrap()
            .iter()
            .map(|r| r.field("name").unwrap().as_str().unwrap().to_string())
            .collect();
        for task in db.table_rows_unordered("tasks").unwrap() {
            let emp = task.field("employee").unwrap().as_str().unwrap();
            assert!(employee_names.iter().any(|n| n == emp));
        }
    }

    #[test]
    fn scales_to_256_departments() {
        // The morsel-parallel bench gate generates at 256+ departments; this
        // pins the row-count shape at that scale (generation itself is
        // linear — rows are bulk-loaded against one precomputed row type).
        let config = OrgConfig {
            departments: 256,
            employees_per_department: 20,
            contacts_per_department: 5,
            ..OrgConfig::default()
        };
        let db = generate(&config);
        assert_eq!(db.row_count("departments"), 256);
        assert_eq!(db.row_count("contacts"), 256 * 5);
        let employees = db.row_count("employees");
        // Average 20 per department, fluctuating ±25%.
        assert!((256 * 15..=256 * 25).contains(&employees), "{employees}");
        assert!(db.row_count("tasks") <= employees * config.max_tasks_per_employee);
    }

    #[test]
    fn bulk_load_matches_per_row_insert() {
        let config = OrgConfig::small();
        let bulk = generate(&config);
        // Reference: the same rows loaded one `insert` call at a time.
        let mut per_row = Database::new(organisation_schema());
        for table in ["departments", "employees", "tasks", "contacts"] {
            for row in bulk.table_rows_unordered(table).unwrap() {
                per_row.insert(table, row.clone()).unwrap();
            }
        }
        assert_eq!(bulk, per_row);
    }

    #[test]
    fn schema_tables_all_have_keys() {
        for table in organisation_schema().tables() {
            assert!(table.has_key(), "table {} should declare a key", table.name);
        }
    }
}
