//! Type checking for λNRC (Figure 12 of the paper).
//!
//! The checker is bidirectional: `infer` synthesises a type where possible and
//! `check` pushes an expected type into terms — λ-abstractions and the
//! unannotated empty bag `∅` can only be *checked*, except that β-redexes
//! `(λx.M) N` are inferred by first inferring the argument. This covers every
//! query the paper writes (and everything the builder API produces), because
//! higher-order functions are always either applied directly or inlined by the
//! host language before checking.

use crate::schema::Schema;
use crate::term::{PrimOp, Term};
use crate::types::{BaseType, Type};
use std::fmt;

/// A typing context Γ.
#[derive(Debug, Clone, Default)]
pub struct Context {
    bindings: Vec<(String, Type)>,
}

impl Context {
    /// The empty context.
    pub fn empty() -> Context {
        Context::default()
    }

    /// Extend with a binding `x : A`.
    pub fn extend(&self, x: &str, ty: Type) -> Context {
        let mut bindings = self.bindings.clone();
        bindings.push((x.to_string(), ty));
        Context { bindings }
    }

    /// Look up a variable.
    pub fn lookup(&self, x: &str) -> Option<&Type> {
        self.bindings
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t)
    }
}

/// Type errors.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    UnboundVariable(String),
    NoSuchTable(String),
    NoSuchField {
        label: String,
        ty: String,
    },
    Mismatch {
        expected: String,
        found: String,
        context: String,
    },
    NotARecord(String),
    NotABag(String),
    NotAFunction(String),
    CannotInfer(String),
    PrimArity {
        op: PrimOp,
        expected: usize,
        got: usize,
    },
    PrimOperand {
        op: PrimOp,
        found: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable {}", x),
            TypeError::NoSuchTable(t) => write!(f, "table {} is not in the schema", t),
            TypeError::NoSuchField { label, ty } => write!(f, "no field {} in type {}", label, ty),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {}: expected {}, found {}",
                    context, expected, found
                )
            }
            TypeError::NotARecord(t) => write!(f, "expected a record type, found {}", t),
            TypeError::NotABag(t) => write!(f, "expected a bag type, found {}", t),
            TypeError::NotAFunction(t) => write!(f, "expected a function type, found {}", t),
            TypeError::CannotInfer(t) => write!(f, "cannot infer a type for {}", t),
            TypeError::PrimArity { op, expected, got } => {
                write!(
                    f,
                    "primitive {} expects {} arguments, got {}",
                    op, expected, got
                )
            }
            TypeError::PrimOperand { op, found } => {
                write!(f, "primitive {} applied to operand of type {}", op, found)
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Infer the type of a closed term.
pub fn typecheck(term: &Term, schema: &Schema) -> Result<Type, TypeError> {
    infer(term, &Context::empty(), schema)
}

/// Check a closed term against an expected type.
pub fn typecheck_against(term: &Term, expected: &Type, schema: &Schema) -> Result<(), TypeError> {
    check(term, expected, &Context::empty(), schema)
}

/// Synthesise a type for `term` in context Γ.
pub fn infer(term: &Term, ctx: &Context, schema: &Schema) -> Result<Type, TypeError> {
    match term {
        Term::Var(x) => ctx
            .lookup(x)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Term::Const(c) => Ok(Type::Base(c.type_of())),
        Term::Param(_, ty) => Ok(Type::Base(*ty)),
        Term::PrimApp(op, args) => infer_prim(*op, args, ctx, schema),
        Term::Table(t) => schema
            .table(t)
            .map(|ts| ts.relation_type())
            .ok_or_else(|| TypeError::NoSuchTable(t.clone())),
        Term::If(c, t, e) => {
            check(c, &Type::bool(), ctx, schema)?;
            // Try to infer the then-branch; if it is an unannotated ∅ or a
            // lambda, fall back to inferring the else-branch instead.
            match infer(t, ctx, schema) {
                Ok(ty) => {
                    check(e, &ty, ctx, schema)?;
                    Ok(ty)
                }
                Err(_) => {
                    let ty = infer(e, ctx, schema)?;
                    check(t, &ty, ctx, schema)?;
                    Ok(ty)
                }
            }
        }
        Term::Lam(_, _) => Err(TypeError::CannotInfer(
            "λ-abstraction outside application position".to_string(),
        )),
        Term::App(f, a) => match f.as_ref() {
            // β-redex: infer the argument, then the body.
            Term::Lam(x, body) => {
                let arg_ty = infer(a, ctx, schema)?;
                infer(body, &ctx.extend(x, arg_ty), schema)
            }
            _ => {
                let fun_ty = infer(f, ctx, schema)?;
                match fun_ty {
                    Type::Fun(arg, res) => {
                        check(a, &arg, ctx, schema)?;
                        Ok(*res)
                    }
                    other => Err(TypeError::NotAFunction(other.to_string())),
                }
            }
        },
        Term::Record(fields) => {
            let mut tys = Vec::with_capacity(fields.len());
            for (l, t) in fields {
                tys.push((l.clone(), infer(t, ctx, schema)?));
            }
            Ok(Type::Record(tys))
        }
        Term::Project(t, label) => {
            let ty = infer(t, ctx, schema)?;
            match &ty {
                Type::Record(_) => ty
                    .field(label)
                    .cloned()
                    .ok_or_else(|| TypeError::NoSuchField {
                        label: label.clone(),
                        ty: ty.to_string(),
                    }),
                other => Err(TypeError::NotARecord(other.to_string())),
            }
        }
        Term::Empty(t) => {
            let ty = infer(t, ctx, schema)?;
            match ty {
                Type::Bag(_) => Ok(Type::bool()),
                other => Err(TypeError::NotABag(other.to_string())),
            }
        }
        Term::Singleton(t) => Ok(Type::bag(infer(t, ctx, schema)?)),
        Term::EmptyBag(Some(elem)) => Ok(Type::bag(elem.clone())),
        Term::EmptyBag(None) => Err(TypeError::CannotInfer(
            "unannotated empty bag ∅".to_string(),
        )),
        Term::Union(l, r) => match infer(l, ctx, schema) {
            Ok(ty) => {
                ensure_bag(&ty)?;
                check(r, &ty, ctx, schema)?;
                Ok(ty)
            }
            Err(_) => {
                let ty = infer(r, ctx, schema)?;
                ensure_bag(&ty)?;
                check(l, &ty, ctx, schema)?;
                Ok(ty)
            }
        },
        Term::For(x, src, body) => {
            let src_ty = infer(src, ctx, schema)?;
            let elem = match src_ty {
                Type::Bag(elem) => *elem,
                other => return Err(TypeError::NotABag(other.to_string())),
            };
            let body_ty = infer(body, &ctx.extend(x, elem), schema)?;
            ensure_bag(&body_ty)?;
            Ok(body_ty)
        }
    }
}

/// Check `term` against `expected` in context Γ.
pub fn check(
    term: &Term,
    expected: &Type,
    ctx: &Context,
    schema: &Schema,
) -> Result<(), TypeError> {
    match (term, expected) {
        (Term::Lam(x, body), Type::Fun(arg, res)) => {
            check(body, res, &ctx.extend(x, (**arg).clone()), schema)
        }
        (Term::Lam(_, _), other) => Err(TypeError::Mismatch {
            expected: other.to_string(),
            found: "a function".to_string(),
            context: "λ-abstraction".to_string(),
        }),
        (Term::EmptyBag(None), Type::Bag(_)) => Ok(()),
        (Term::EmptyBag(None), other) => Err(TypeError::NotABag(other.to_string())),
        (Term::If(c, t, e), _) => {
            check(c, &Type::bool(), ctx, schema)?;
            check(t, expected, ctx, schema)?;
            check(e, expected, ctx, schema)
        }
        (Term::Union(l, r), Type::Bag(_)) => {
            check(l, expected, ctx, schema)?;
            check(r, expected, ctx, schema)
        }
        (Term::Singleton(t), Type::Bag(elem)) => check(t, elem, ctx, schema),
        (Term::For(x, src, body), Type::Bag(_)) => {
            let src_ty = infer(src, ctx, schema)?;
            let elem = match src_ty {
                Type::Bag(elem) => *elem,
                other => return Err(TypeError::NotABag(other.to_string())),
            };
            check(body, expected, &ctx.extend(x, elem), schema)
        }
        (Term::Record(fields), Type::Record(ftys)) if fields.len() == ftys.len() => {
            for (l, t) in fields {
                match ftys.iter().find(|(fl, _)| fl == l) {
                    Some((_, fty)) => check(t, fty, ctx, schema)?,
                    None => {
                        return Err(TypeError::NoSuchField {
                            label: l.clone(),
                            ty: expected.to_string(),
                        })
                    }
                }
            }
            Ok(())
        }
        _ => {
            let found = infer(term, ctx, schema)?;
            if found.equiv(expected) {
                Ok(())
            } else {
                Err(TypeError::Mismatch {
                    expected: expected.to_string(),
                    found: found.to_string(),
                    context: "checked term".to_string(),
                })
            }
        }
    }
}

fn ensure_bag(ty: &Type) -> Result<(), TypeError> {
    match ty {
        Type::Bag(_) => Ok(()),
        other => Err(TypeError::NotABag(other.to_string())),
    }
}

fn infer_prim(
    op: PrimOp,
    args: &[Term],
    ctx: &Context,
    schema: &Schema,
) -> Result<Type, TypeError> {
    if args.len() != op.arity() {
        return Err(TypeError::PrimArity {
            op,
            expected: op.arity(),
            got: args.len(),
        });
    }
    let tys: Vec<Type> = args
        .iter()
        .map(|a| infer(a, ctx, schema))
        .collect::<Result<_, _>>()?;
    let base = |t: &Type| -> Result<BaseType, TypeError> {
        match t {
            Type::Base(b) => Ok(*b),
            other => Err(TypeError::PrimOperand {
                op,
                found: other.to_string(),
            }),
        }
    };
    match op {
        PrimOp::Eq | PrimOp::Neq => {
            let a = base(&tys[0])?;
            let b = base(&tys[1])?;
            if a == b {
                Ok(Type::bool())
            } else {
                Err(TypeError::Mismatch {
                    expected: tys[0].to_string(),
                    found: tys[1].to_string(),
                    context: format!("operands of {}", op),
                })
            }
        }
        PrimOp::Lt | PrimOp::Gt | PrimOp::Le | PrimOp::Ge => {
            let a = base(&tys[0])?;
            let b = base(&tys[1])?;
            if a == b && a != BaseType::Unit {
                Ok(Type::bool())
            } else {
                Err(TypeError::PrimOperand {
                    op,
                    found: format!("{}, {}", tys[0], tys[1]),
                })
            }
        }
        PrimOp::And | PrimOp::Or => {
            for t in &tys {
                if base(t)? != BaseType::Bool {
                    return Err(TypeError::PrimOperand {
                        op,
                        found: t.to_string(),
                    });
                }
            }
            Ok(Type::bool())
        }
        PrimOp::Not => {
            if base(&tys[0])? != BaseType::Bool {
                return Err(TypeError::PrimOperand {
                    op,
                    found: tys[0].to_string(),
                });
            }
            Ok(Type::bool())
        }
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Mod => {
            for t in &tys {
                if base(t)? != BaseType::Int {
                    return Err(TypeError::PrimOperand {
                        op,
                        found: t.to_string(),
                    });
                }
            }
            Ok(Type::int())
        }
        PrimOp::Concat => {
            for t in &tys {
                if base(t)? != BaseType::String {
                    return Err(TypeError::PrimOperand {
                        op,
                        found: t.to_string(),
                    });
                }
            }
            Ok(Type::string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::schema::TableSchema;

    fn schema() -> Schema {
        Schema::new().with_table(
            TableSchema::new(
                "employees",
                vec![
                    ("id", BaseType::Int),
                    ("dept", BaseType::String),
                    ("name", BaseType::String),
                    ("salary", BaseType::Int),
                ],
            )
            .with_key(vec!["id"]),
        )
    }

    #[test]
    fn table_has_relation_type() {
        let ty = typecheck(&table("employees"), &schema()).unwrap();
        assert!(ty.is_flat_relation());
    }

    #[test]
    fn comprehension_types() {
        let q = for_where(
            "e",
            table("employees"),
            gt(project(var("e"), "salary"), int(1000)),
            singleton(record(vec![("name", project(var("e"), "name"))])),
        );
        let ty = typecheck(&q, &schema()).unwrap();
        assert!(ty.equiv(&Type::bag(Type::record(vec![("name", Type::string())]))));
    }

    #[test]
    fn nested_result_type_has_degree_two() {
        let q = for_in(
            "e",
            table("employees"),
            singleton(record(vec![
                ("name", project(var("e"), "name")),
                (
                    "peers",
                    for_where(
                        "f",
                        table("employees"),
                        eq(project(var("f"), "dept"), project(var("e"), "dept")),
                        singleton(project(var("f"), "name")),
                    ),
                ),
            ])),
        );
        let ty = typecheck(&q, &schema()).unwrap();
        assert_eq!(ty.nesting_degree(), 2);
    }

    #[test]
    fn beta_redexes_are_inferable() {
        let q = app(lam("x", add(var("x"), int(1))), int(41));
        assert_eq!(typecheck(&q, &schema()), Ok(Type::int()));
    }

    #[test]
    fn bare_lambda_cannot_be_inferred_but_checks() {
        let t = lam("x", var("x"));
        assert!(matches!(
            typecheck(&t, &schema()),
            Err(TypeError::CannotInfer(_))
        ));
        assert!(typecheck_against(&t, &Type::fun(Type::int(), Type::int()), &schema()).is_ok());
    }

    #[test]
    fn unannotated_empty_bag_checks_against_bag_types() {
        assert!(typecheck_against(&empty_bag(), &Type::bag(Type::int()), &schema()).is_ok());
        assert!(matches!(
            typecheck(&empty_bag(), &schema()),
            Err(TypeError::CannotInfer(_))
        ));
    }

    #[test]
    fn where_clause_with_empty_else_infers() {
        // if cond then return 1 else ∅ — the else branch is an unannotated ∅.
        let t = where_(boolean(true), singleton(int(1)));
        assert_eq!(typecheck(&t, &schema()), Ok(Type::bag(Type::int())));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(matches!(
            typecheck(&add(int(1), string("x")), &schema()),
            Err(TypeError::PrimOperand { .. })
        ));
        assert!(matches!(
            typecheck(&project(int(1), "a"), &schema()),
            Err(TypeError::NotARecord(_))
        ));
        assert!(matches!(
            typecheck(&table("missing"), &schema()),
            Err(TypeError::NoSuchTable(_))
        ));
        assert!(matches!(
            typecheck(&var("x"), &schema()),
            Err(TypeError::UnboundVariable(_))
        ));
    }

    #[test]
    fn union_requires_matching_element_types() {
        let q = union(singleton(int(1)), singleton(string("x")));
        assert!(typecheck(&q, &schema()).is_err());
    }

    #[test]
    fn empty_test_has_bool_type() {
        let q = is_empty(table("employees"));
        assert_eq!(typecheck(&q, &schema()), Ok(Type::bool()));
    }
}
