//! Terms of the higher-order nested relational calculus (λNRC).
//!
//! The grammar follows Section 2.1 of the paper:
//!
//! ```text
//! M, N ::= x | c(M⃗) | table t | if M then N else N'
//!        | λx.M | M N | ⟨ℓ⃗ = M⃗⟩ | M.ℓ | empty M
//!        | return M | ∅ | M ⊎ N | for (x ← M) N
//! ```

use crate::types::{BaseType, Type};
use std::fmt;

/// Constants of base type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    Int(i64),
    Bool(bool),
    String(String),
    /// The unit constant (used after record flattening, Appendix E).
    Unit,
}

impl Constant {
    /// The base type of the constant.
    pub fn type_of(&self) -> crate::types::BaseType {
        use crate::types::BaseType;
        match self {
            Constant::Int(_) => BaseType::Int,
            Constant::Bool(_) => BaseType::Bool,
            Constant::String(_) => BaseType::String,
            Constant::Unit => BaseType::Unit,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{}", i),
            Constant::Bool(b) => write!(f, "{}", b),
            Constant::String(s) => write!(f, "{:?}", s),
            Constant::Unit => write!(f, "()"),
        }
    }
}

/// Primitive first-order operations (the fixed signature Σ(c) of the paper).
///
/// All primitives take base-typed arguments and return a base type; this is
/// exactly the restriction the paper places on constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimOp {
    /// Equality on base values.
    Eq,
    /// Disequality on base values.
    Neq,
    /// Integer/string less-than.
    Lt,
    /// Integer/string greater-than.
    Gt,
    /// Integer/string less-or-equal.
    Le,
    /// Integer/string greater-or-equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (errors on zero at evaluation time).
    Div,
    /// Integer remainder.
    Mod,
    /// String concatenation.
    Concat,
}

impl PrimOp {
    /// The number of arguments the primitive expects.
    pub fn arity(&self) -> usize {
        match self {
            PrimOp::Not => 1,
            _ => 2,
        }
    }

    /// The SQL-ish symbol for this operator, used by pretty printers.
    pub fn symbol(&self) -> &'static str {
        match self {
            PrimOp::Eq => "=",
            PrimOp::Neq => "<>",
            PrimOp::Lt => "<",
            PrimOp::Gt => ">",
            PrimOp::Le => "<=",
            PrimOp::Ge => ">=",
            PrimOp::And => "and",
            PrimOp::Or => "or",
            PrimOp::Not => "not",
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Mod => "%",
            PrimOp::Concat => "||",
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// λNRC terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable `x`.
    Var(String),
    /// A constant of base type.
    Const(Constant),
    /// A typed query parameter `?name : O` — a bind variable whose value is
    /// supplied at execution time (prepared-statement style). Parameters are
    /// base-typed, like constants, so they survive normalisation, shredding
    /// and SQL generation as opaque atoms.
    Param(String, BaseType),
    /// Application of a primitive operation `c(M1, …, Mn)`.
    PrimApp(PrimOp, Vec<Term>),
    /// A database table reference `table t`.
    Table(String),
    /// A conditional `if L then M else N`.
    If(Box<Term>, Box<Term>, Box<Term>),
    /// A λ-abstraction `λx.M`.
    Lam(String, Box<Term>),
    /// Function application `M N`.
    App(Box<Term>, Box<Term>),
    /// A record `⟨ℓ1 = M1, …, ℓn = Mn⟩`.
    Record(Vec<(String, Term)>),
    /// A record projection `M.ℓ`.
    Project(Box<Term>, String),
    /// The emptiness test `empty M`.
    Empty(Box<Term>),
    /// A singleton bag `return M`.
    Singleton(Box<Term>),
    /// The empty bag `∅`. Carries its element type so that evaluation and
    /// typechecking of `∅` do not need an annotation environment.
    EmptyBag(Option<Type>),
    /// Bag union `M ⊎ N`.
    Union(Box<Term>, Box<Term>),
    /// A comprehension `for (x ← M) N`.
    For(String, Box<Term>, Box<Term>),
}

impl Term {
    /// Free variables of the term, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<String> {
        fn go(term: &Term, bound: &mut Vec<String>, acc: &mut Vec<String>) {
            match term {
                Term::Var(x) => {
                    if !bound.contains(x) && !acc.contains(x) {
                        acc.push(x.clone());
                    }
                }
                Term::Const(_) | Term::Param(_, _) | Term::Table(_) | Term::EmptyBag(_) => {}
                Term::PrimApp(_, args) => {
                    for a in args {
                        go(a, bound, acc);
                    }
                }
                Term::If(c, t, e) => {
                    go(c, bound, acc);
                    go(t, bound, acc);
                    go(e, bound, acc);
                }
                Term::Lam(x, body) => {
                    bound.push(x.clone());
                    go(body, bound, acc);
                    bound.pop();
                }
                Term::App(f, a) => {
                    go(f, bound, acc);
                    go(a, bound, acc);
                }
                Term::Record(fields) => {
                    for (_, t) in fields {
                        go(t, bound, acc);
                    }
                }
                Term::Project(t, _) | Term::Empty(t) | Term::Singleton(t) => go(t, bound, acc),
                Term::Union(l, r) => {
                    go(l, bound, acc);
                    go(r, bound, acc);
                }
                Term::For(x, src, body) => {
                    go(src, bound, acc);
                    bound.push(x.clone());
                    go(body, bound, acc);
                    bound.pop();
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut Vec::new(), &mut acc);
        acc
    }

    /// Is the term closed (no free variables)?
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All table names referenced by the term, deduplicated.
    pub fn tables(&self) -> Vec<String> {
        fn go(term: &Term, acc: &mut Vec<String>) {
            match term {
                Term::Table(t) => {
                    if !acc.contains(t) {
                        acc.push(t.clone());
                    }
                }
                Term::Var(_) | Term::Const(_) | Term::Param(_, _) | Term::EmptyBag(_) => {}
                Term::PrimApp(_, args) => args.iter().for_each(|a| go(a, acc)),
                Term::If(c, t, e) => {
                    go(c, acc);
                    go(t, acc);
                    go(e, acc);
                }
                Term::Lam(_, b) => go(b, acc),
                Term::App(f, a) => {
                    go(f, acc);
                    go(a, acc);
                }
                Term::Record(fields) => fields.iter().for_each(|(_, t)| go(t, acc)),
                Term::Project(t, _) | Term::Empty(t) | Term::Singleton(t) => go(t, acc),
                Term::Union(l, r) => {
                    go(l, acc);
                    go(r, acc);
                }
                Term::For(_, s, b) => {
                    go(s, acc);
                    go(b, acc);
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// Capture-avoiding substitution `self[x := value]`.
    ///
    /// Bound variables that would capture a free variable of `value` are
    /// renamed with a fresh suffix.
    pub fn subst(&self, x: &str, value: &Term) -> Term {
        let value_free = value.free_vars();
        self.subst_inner(x, value, &value_free, &mut 0)
    }

    fn subst_inner(&self, x: &str, value: &Term, value_free: &[String], fresh: &mut usize) -> Term {
        match self {
            Term::Var(y) => {
                if y == x {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            Term::Const(_) | Term::Param(_, _) | Term::Table(_) | Term::EmptyBag(_) => self.clone(),
            Term::PrimApp(op, args) => Term::PrimApp(
                *op,
                args.iter()
                    .map(|a| a.subst_inner(x, value, value_free, fresh))
                    .collect(),
            ),
            Term::If(c, t, e) => Term::If(
                Box::new(c.subst_inner(x, value, value_free, fresh)),
                Box::new(t.subst_inner(x, value, value_free, fresh)),
                Box::new(e.subst_inner(x, value, value_free, fresh)),
            ),
            Term::Lam(y, body) => {
                if y == x {
                    self.clone()
                } else if value_free.contains(y) {
                    let y2 = freshen(y, fresh);
                    let body2 = body.subst(y, &Term::Var(y2.clone()));
                    Term::Lam(y2, Box::new(body2.subst_inner(x, value, value_free, fresh)))
                } else {
                    Term::Lam(
                        y.clone(),
                        Box::new(body.subst_inner(x, value, value_free, fresh)),
                    )
                }
            }
            Term::App(f, a) => Term::App(
                Box::new(f.subst_inner(x, value, value_free, fresh)),
                Box::new(a.subst_inner(x, value, value_free, fresh)),
            ),
            Term::Record(fields) => Term::Record(
                fields
                    .iter()
                    .map(|(l, t)| (l.clone(), t.subst_inner(x, value, value_free, fresh)))
                    .collect(),
            ),
            Term::Project(t, l) => Term::Project(
                Box::new(t.subst_inner(x, value, value_free, fresh)),
                l.clone(),
            ),
            Term::Empty(t) => Term::Empty(Box::new(t.subst_inner(x, value, value_free, fresh))),
            Term::Singleton(t) => {
                Term::Singleton(Box::new(t.subst_inner(x, value, value_free, fresh)))
            }
            Term::Union(l, r) => Term::Union(
                Box::new(l.subst_inner(x, value, value_free, fresh)),
                Box::new(r.subst_inner(x, value, value_free, fresh)),
            ),
            Term::For(y, src, body) => {
                let src2 = src.subst_inner(x, value, value_free, fresh);
                if y == x {
                    Term::For(y.clone(), Box::new(src2), body.clone())
                } else if value_free.contains(y) {
                    let y2 = freshen(y, fresh);
                    let body2 = body.subst(y, &Term::Var(y2.clone()));
                    Term::For(
                        y2,
                        Box::new(src2),
                        Box::new(body2.subst_inner(x, value, value_free, fresh)),
                    )
                } else {
                    Term::For(
                        y.clone(),
                        Box::new(src2),
                        Box::new(body.subst_inner(x, value, value_free, fresh)),
                    )
                }
            }
        }
    }

    /// The parameters of the term: `(name, declared type)` pairs in
    /// first-occurrence order, deduplicated by name. A name declared at two
    /// different types appears once per distinct type (callers reject that
    /// as a conflict).
    pub fn params(&self) -> Vec<(String, BaseType)> {
        fn go(term: &Term, acc: &mut Vec<(String, BaseType)>) {
            match term {
                Term::Param(name, ty) => {
                    if !acc.iter().any(|(n, t)| n == name && t == ty) {
                        acc.push((name.clone(), *ty));
                    }
                }
                Term::Var(_) | Term::Const(_) | Term::Table(_) | Term::EmptyBag(_) => {}
                Term::PrimApp(_, args) => args.iter().for_each(|a| go(a, acc)),
                Term::If(c, t, e) => {
                    go(c, acc);
                    go(t, acc);
                    go(e, acc);
                }
                Term::Lam(_, b) => go(b, acc),
                Term::App(f, a) => {
                    go(f, acc);
                    go(a, acc);
                }
                Term::Record(fields) => fields.iter().for_each(|(_, t)| go(t, acc)),
                Term::Project(t, _) | Term::Empty(t) | Term::Singleton(t) => go(t, acc),
                Term::Union(l, r) => {
                    go(l, acc);
                    go(r, acc);
                }
                Term::For(_, s, b) => {
                    go(s, acc);
                    go(b, acc);
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc);
        acc
    }

    /// The size of the term (number of AST constructors), used to bound
    /// normalisation in tests.
    pub fn size(&self) -> usize {
        match self {
            Term::Var(_)
            | Term::Const(_)
            | Term::Param(_, _)
            | Term::Table(_)
            | Term::EmptyBag(_) => 1,
            Term::PrimApp(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            Term::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Term::Lam(_, b) => 1 + b.size(),
            Term::App(f, a) => 1 + f.size() + a.size(),
            Term::Record(fields) => 1 + fields.iter().map(|(_, t)| t.size()).sum::<usize>(),
            Term::Project(t, _) | Term::Empty(t) | Term::Singleton(t) => 1 + t.size(),
            Term::Union(l, r) => 1 + l.size() + r.size(),
            Term::For(_, s, b) => 1 + s.size() + b.size(),
        }
    }
}

fn freshen(base: &str, fresh: &mut usize) -> String {
    *fresh += 1;
    format!("{}%{}", base, fresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn free_vars_of_open_term() {
        let t = for_in("x", table("t"), record(vec![("a", project(var("y"), "f"))]));
        assert_eq!(t.free_vars(), vec!["y".to_string()]);
        assert!(!t.is_closed());
    }

    #[test]
    fn bound_vars_are_not_free() {
        let t = lam("x", project(var("x"), "a"));
        assert!(t.is_closed());
    }

    #[test]
    fn substitution_replaces_free_occurrences() {
        let t = record(vec![("a", var("x")), ("b", var("y"))]);
        let r = t.subst("x", &int(7));
        assert_eq!(r, record(vec![("a", int(7)), ("b", var("y"))]));
    }

    #[test]
    fn substitution_respects_shadowing() {
        // (λx. x) with [x := 3] must not substitute under the binder.
        let t = lam("x", var("x"));
        assert_eq!(t.subst("x", &int(3)), lam("x", var("x")));
    }

    #[test]
    fn substitution_avoids_capture() {
        // (λy. x ⊎ y) [x := y]  must rename the bound y.
        let t = lam("y", union(var("x"), var("y")));
        let r = t.subst("x", &var("y"));
        if let Term::Lam(bound, body) = &r {
            assert_ne!(bound, "y");
            assert_eq!(**body, union(var("y"), var(bound.as_str())));
        } else {
            panic!("expected a lambda, got {:?}", r);
        }
    }

    #[test]
    fn capture_avoidance_in_for_comprehension() {
        // for (y ← t) (x ⊎ return y) [x := return y]
        let t = for_in("y", table("t"), union(var("x"), singleton(var("y"))));
        let r = t.subst("x", &singleton(var("y")));
        if let Term::For(bound, _, body) = &r {
            assert_ne!(bound, "y");
            assert!(format!("{:?}", body).contains(bound.as_str()));
        } else {
            panic!("expected a for, got {:?}", r);
        }
    }

    #[test]
    fn tables_are_collected_once() {
        let t = union(
            for_in("x", table("employees"), singleton(var("x"))),
            for_in("y", table("employees"), singleton(var("y"))),
        );
        assert_eq!(t.tables(), vec!["employees".to_string()]);
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(int(1).size(), 1);
        assert_eq!(union(int(1), int(2)).size(), 3);
    }

    #[test]
    fn prim_op_arity() {
        assert_eq!(PrimOp::Not.arity(), 1);
        assert_eq!(PrimOp::And.arity(), 2);
    }
}
