//! Evaluation environments ρ mapping variables to values.

use crate::value::Value;
use std::fmt;

/// An environment ρ. The paper writes `ε` for the empty environment and
/// `ρ[x ↦ v]` for extension; [`Env::empty`] and [`Env::extend`] mirror those.
///
/// Environments are small (bounded by the number of nested binders in a
/// query), so a simple association list cloned on extension is both simple
/// and fast enough; lookups scan from the most recent binding, giving the
/// correct shadowing behaviour.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Env {
    bindings: Vec<(String, Value)>,
}

impl Env {
    /// The empty environment ε.
    pub fn empty() -> Env {
        Env {
            bindings: Vec::new(),
        }
    }

    /// `ρ[x ↦ v]`: a new environment extending `self`.
    pub fn extend(&self, x: &str, v: Value) -> Env {
        let mut bindings = self.bindings.clone();
        bindings.push((x.to_string(), v));
        Env { bindings }
    }

    /// In-place extension, used where the environment is threaded linearly.
    pub fn push(&mut self, x: &str, v: Value) {
        self.bindings.push((x.to_string(), v));
    }

    /// Remove the most recent binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Look up a variable (most recent binding wins).
    pub fn lookup(&self, x: &str) -> Option<&Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, v)| v)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Is the environment empty?
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterate over bindings, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.bindings.iter().map(|(x, v)| (x.as_str(), v))
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (x, v)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} ↦ {}", x, v)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_most_recent_binding() {
        let env = Env::empty()
            .extend("x", Value::Int(1))
            .extend("x", Value::Int(2));
        assert_eq!(env.lookup("x"), Some(&Value::Int(2)));
    }

    #[test]
    fn lookup_missing_is_none() {
        assert_eq!(Env::empty().lookup("x"), None);
    }

    #[test]
    fn extend_does_not_mutate_original() {
        let base = Env::empty();
        let _ext = base.extend("x", Value::Int(1));
        assert!(base.is_empty());
    }

    #[test]
    fn push_and_pop_round_trip() {
        let mut env = Env::empty();
        env.push("x", Value::Int(1));
        assert_eq!(env.len(), 1);
        env.pop();
        assert!(env.is_empty());
    }
}
