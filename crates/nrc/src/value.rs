//! Nested values: the results of evaluating λNRC queries.
//!
//! Following the paper's denotational semantics (Figure 2), object-level bags
//! are interpreted as meta-level lists, and two values are equivalent *as
//! multisets* when they are equal up to permutation of bag elements at every
//! nesting level.

use crate::env::Env;
use crate::term::{Constant, Term};
use crate::types::{BaseType, Type};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A nested value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Bool(bool),
    /// A string value. The payload is `Arc`-shared so strings decoded from
    /// SQL results (whose cells are already `Arc<str>`) reach the final
    /// nested value as refcount bumps, never copies.
    String(Arc<str>),
    Unit,
    /// A record value. Field order is preserved from the constructing term.
    Record(Vec<(String, Value)>),
    /// A bag value, represented as a list (order carries no semantic weight).
    Bag(Vec<Value>),
    /// A function closure. Only appears while evaluating higher-order terms;
    /// never appears in a query result of nested type.
    Closure {
        param: String,
        body: Box<Term>,
        env: Env,
    },
}

impl Value {
    /// Construct a record value.
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Record(fields.into_iter().map(|(l, v)| (l.into(), v)).collect())
    }

    /// Construct a bag value.
    pub fn bag<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Bag(items.into_iter().collect())
    }

    /// Construct a string value.
    pub fn string<S: Into<Arc<str>>>(s: S) -> Value {
        Value::String(s.into())
    }

    /// Construct a value from a constant.
    pub fn from_constant(c: &Constant) -> Value {
        match c {
            Constant::Int(i) => Value::Int(*i),
            Constant::Bool(b) => Value::Bool(*b),
            Constant::String(s) => Value::String(Arc::from(s.as_str())),
            Constant::Unit => Value::Unit,
        }
    }

    /// The constant corresponding to a base value (`None` for records, bags
    /// and closures). The inverse of [`Value::from_constant`].
    pub fn as_constant(&self) -> Option<Constant> {
        match self {
            Value::Int(i) => Some(Constant::Int(*i)),
            Value::Bool(b) => Some(Constant::Bool(*b)),
            Value::String(s) => Some(Constant::String(s.to_string())),
            Value::Unit => Some(Constant::Unit),
            _ => None,
        }
    }

    /// The base type of a base value (`None` for records, bags and closures).
    pub fn base_type(&self) -> Option<crate::types::BaseType> {
        self.as_constant().map(|c| c.type_of())
    }

    /// The boolean content of a value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer content of a value, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string content of a value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// The elements of a bag value, if it is a bag.
    pub fn as_bag(&self) -> Option<&[Value]> {
        match self {
            Value::Bag(items) => Some(items),
            _ => None,
        }
    }

    /// The fields of a record value, if it is a record.
    pub fn as_record(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Record(fields) => Some(fields),
            _ => None,
        }
    }

    /// Project a field of a record value.
    pub fn field(&self, label: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.iter().find(|(l, _)| l == label).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Does this value contain a closure anywhere?
    pub fn contains_closure(&self) -> bool {
        match self {
            Value::Closure { .. } => true,
            Value::Record(fields) => fields.iter().any(|(_, v)| v.contains_closure()),
            Value::Bag(items) => items.iter().any(Value::contains_closure),
            _ => false,
        }
    }

    /// The *canonical form* of a first-order value: bag elements are sorted by
    /// a fixed total order and record fields are sorted by label. Two values
    /// are equal as nested multisets iff their canonical forms are equal.
    ///
    /// Panics if the value contains a closure (closures have no canonical
    /// form and never appear in nested query results).
    pub fn canonical(&self) -> Value {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::String(_) | Value::Unit => self.clone(),
            Value::Record(fields) => {
                let mut fields: Vec<(String, Value)> = fields
                    .iter()
                    .map(|(l, v)| (l.clone(), v.canonical()))
                    .collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Value::Record(fields)
            }
            Value::Bag(items) => {
                let mut items: Vec<Value> = items.iter().map(Value::canonical).collect();
                items.sort_by(compare_canonical);
                Value::Bag(items)
            }
            Value::Closure { .. } => panic!("closures have no canonical form"),
        }
    }

    /// Multiset equality: equality up to permutation of bag elements at every
    /// nesting level (and record field order).
    pub fn multiset_eq(&self, other: &Value) -> bool {
        self.canonical() == other.canonical()
    }

    /// Total number of scalar values in this value, a rough measure of its
    /// size (used by the experiments to report data movement).
    pub fn scalar_count(&self) -> usize {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::String(_) | Value::Unit => 1,
            Value::Record(fields) => fields.iter().map(|(_, v)| v.scalar_count()).sum(),
            Value::Bag(items) => items.iter().map(Value::scalar_count).sum(),
            Value::Closure { .. } => 0,
        }
    }

    /// Does this first-order value inhabit the given type?
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Int(_), Type::Base(BaseType::Int)) => true,
            (Value::Bool(_), Type::Base(BaseType::Bool)) => true,
            (Value::String(_), Type::Base(BaseType::String)) => true,
            (Value::Unit, Type::Base(BaseType::Unit)) => true,
            (Value::Record(fields), Type::Record(ftys)) => {
                fields.len() == ftys.len()
                    && ftys
                        .iter()
                        .all(|(l, t)| fields.iter().any(|(fl, fv)| fl == l && fv.has_type(t)))
            }
            (Value::Bag(items), Type::Bag(inner)) => items.iter().all(|v| v.has_type(inner)),
            _ => false,
        }
    }
}

/// A total order on canonical first-order values, used to sort bag elements.
/// The ordering is arbitrary but fixed: by variant rank, then structurally.
pub fn compare_canonical(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::String(_) => 3,
            Value::Record(_) => 4,
            Value::Bag(_) => 5,
            Value::Closure { .. } => 6,
        }
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Unit, Value::Unit) => Ordering::Equal,
        (Value::Record(xs), Value::Record(ys)) => {
            for ((lx, vx), (ly, vy)) in xs.iter().zip(ys.iter()) {
                let c = lx.cmp(ly).then_with(|| compare_canonical(vx, vy));
                if c != Ordering::Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        (Value::Bag(xs), Value::Bag(ys)) => {
            for (vx, vy) in xs.iter().zip(ys.iter()) {
                let c = compare_canonical(vx, vy);
                if c != Ordering::Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(Arc::from(s))
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Value {
        Value::String(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{}", i),
            Value::Bool(b) => write!(f, "{}", b),
            Value::String(s) => write!(f, "{:?}", s),
            Value::Unit => write!(f, "()"),
            Value::Record(fields) => {
                write!(f, "<")?;
                for (i, (l, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} = {}", l, v)?;
                }
                write!(f, ">")
            }
            Value::Bag(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v)?;
                }
                write!(f, "]")
            }
            Value::Closure { param, .. } => write!(f, "<closure λ{}>", param),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_equality_ignores_order() {
        let a = Value::bag(vec![Value::Int(1), Value::Int(2), Value::Int(2)]);
        let b = Value::bag(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert!(a.multiset_eq(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn multiset_equality_respects_multiplicity() {
        let a = Value::bag(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::bag(vec![Value::Int(1), Value::Int(2), Value::Int(2)]);
        assert!(!a.multiset_eq(&b));
    }

    #[test]
    fn multiset_equality_is_nested() {
        let a = Value::bag(vec![Value::record(vec![(
            "xs",
            Value::bag(vec![Value::Int(1), Value::Int(2)]),
        )])]);
        let b = Value::bag(vec![Value::record(vec![(
            "xs",
            Value::bag(vec![Value::Int(2), Value::Int(1)]),
        )])]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn record_field_order_does_not_matter_for_multiset_eq() {
        let a = Value::record(vec![("a", Value::Int(1)), ("b", Value::Int(2))]);
        let b = Value::record(vec![("b", Value::Int(2)), ("a", Value::Int(1))]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn has_type_checks_structure() {
        let v = Value::bag(vec![Value::record(vec![
            ("name", Value::string("a")),
            ("salary", Value::Int(3)),
        ])]);
        let t = Type::bag(Type::record(vec![
            ("name", Type::string()),
            ("salary", Type::int()),
        ]));
        assert!(v.has_type(&t));
        assert!(!v.has_type(&Type::bag(Type::int())));
    }

    #[test]
    fn field_projection() {
        let v = Value::record(vec![("a", Value::Int(1))]);
        assert_eq!(v.field("a"), Some(&Value::Int(1)));
        assert_eq!(v.field("b"), None);
    }

    #[test]
    fn scalar_count_counts_leaves() {
        let v = Value::bag(vec![
            Value::record(vec![("a", Value::Int(1)), ("b", Value::string("x"))]),
            Value::record(vec![("a", Value::Int(2)), ("b", Value::string("y"))]),
        ]);
        assert_eq!(v.scalar_count(), 4);
    }

    #[test]
    fn compare_canonical_is_total_on_mixed_ranks() {
        assert_eq!(
            compare_canonical(&Value::Bool(true), &Value::Int(0)),
            Ordering::Less
        );
    }
}
