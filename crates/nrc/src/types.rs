//! Types of the higher-order nested relational calculus (λNRC).
//!
//! Following Section 2.1 of the paper, types are built from base types
//! (integers, booleans, strings), record types, bag types and function types.
//! A type is *nested* if it contains no function type, and *flat* if it
//! contains only base and record types.

use std::fmt;

/// Base types of λNRC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseType {
    Int,
    Bool,
    String,
    /// The unit type, used by record flattening (Appendix E) to represent
    /// empty records at base positions.
    Unit,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Int => write!(f, "Int"),
            BaseType::Bool => write!(f, "Bool"),
            BaseType::String => write!(f, "String"),
            BaseType::Unit => write!(f, "Unit"),
        }
    }
}

/// λNRC types.
///
/// Record fields are kept in the order they were written; two record types
/// are compared up to field order by [`Type::equiv`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A base type (`Int`, `Bool`, `String`).
    Base(BaseType),
    /// A record type `⟨ℓ1 : A1, …, ℓn : An⟩`.
    Record(Vec<(String, Type)>),
    /// A bag (multiset) type `Bag A`.
    Bag(Box<Type>),
    /// A function type `A → B`.
    Fun(Box<Type>, Box<Type>),
}

impl Type {
    /// `Int`.
    pub fn int() -> Type {
        Type::Base(BaseType::Int)
    }

    /// `Bool`.
    pub fn bool() -> Type {
        Type::Base(BaseType::Bool)
    }

    /// `String`.
    pub fn string() -> Type {
        Type::Base(BaseType::String)
    }

    /// `Unit` (the empty record viewed as a base type, see Appendix E).
    pub fn unit() -> Type {
        Type::Base(BaseType::Unit)
    }

    /// A record type from label/type pairs.
    pub fn record<I, S>(fields: I) -> Type
    where
        I: IntoIterator<Item = (S, Type)>,
        S: Into<String>,
    {
        Type::Record(fields.into_iter().map(|(l, t)| (l.into(), t)).collect())
    }

    /// A bag type `Bag A`.
    pub fn bag(inner: Type) -> Type {
        Type::Bag(Box::new(inner))
    }

    /// A function type `A → B`.
    pub fn fun(arg: Type, res: Type) -> Type {
        Type::Fun(Box::new(arg), Box::new(res))
    }

    /// An n-ary tuple type, encoded as a record with labels `#1 … #n`.
    pub fn tuple<I: IntoIterator<Item = Type>>(items: I) -> Type {
        Type::Record(
            items
                .into_iter()
                .enumerate()
                .map(|(i, t)| (format!("#{}", i + 1), t))
                .collect(),
        )
    }

    /// Is this a base type?
    pub fn is_base(&self) -> bool {
        matches!(self, Type::Base(_))
    }

    /// Is this type *flat* (only base and record types)?
    pub fn is_flat(&self) -> bool {
        match self {
            Type::Base(_) => true,
            Type::Record(fields) => fields.iter().all(|(_, t)| t.is_flat()),
            Type::Bag(_) | Type::Fun(_, _) => false,
        }
    }

    /// Is this type a *flat relation type* `Bag ⟨ℓ1:O1,…,ℓn:On⟩` (the only
    /// type a database table may have)?
    pub fn is_flat_relation(&self) -> bool {
        match self {
            Type::Bag(inner) => match inner.as_ref() {
                Type::Record(fields) => fields.iter().all(|(_, t)| t.is_base()),
                _ => false,
            },
            _ => false,
        }
    }

    /// Is this type *nested* (no function types anywhere)?
    pub fn is_nested(&self) -> bool {
        match self {
            Type::Base(_) => true,
            Type::Record(fields) => fields.iter().all(|(_, t)| t.is_nested()),
            Type::Bag(inner) => inner.is_nested(),
            Type::Fun(_, _) => false,
        }
    }

    /// The *nesting degree* of a type: the number of bag type constructors it
    /// contains (Section 3). This is the number of flat queries produced by
    /// shredding a query of this type.
    pub fn nesting_degree(&self) -> usize {
        match self {
            Type::Base(_) => 0,
            Type::Record(fields) => fields.iter().map(|(_, t)| t.nesting_degree()).sum(),
            Type::Bag(inner) => 1 + inner.nesting_degree(),
            Type::Fun(a, b) => a.nesting_degree() + b.nesting_degree(),
        }
    }

    /// Look up a field of a record type.
    pub fn field(&self, label: &str) -> Option<&Type> {
        match self {
            Type::Record(fields) => fields.iter().find(|(l, _)| l == label).map(|(_, t)| t),
            _ => None,
        }
    }

    /// The element type of a bag type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Bag(inner) => Some(inner),
            _ => None,
        }
    }

    /// Structural equivalence up to record field order.
    pub fn equiv(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Base(a), Type::Base(b)) => a == b,
            (Type::Bag(a), Type::Bag(b)) => a.equiv(b),
            (Type::Fun(a1, b1), Type::Fun(a2, b2)) => a1.equiv(a2) && b1.equiv(b2),
            (Type::Record(fs), Type::Record(gs)) => {
                if fs.len() != gs.len() {
                    return false;
                }
                let mut fs_sorted: Vec<_> = fs.iter().collect();
                let mut gs_sorted: Vec<_> = gs.iter().collect();
                fs_sorted.sort_by(|a, b| a.0.cmp(&b.0));
                gs_sorted.sort_by(|a, b| a.0.cmp(&b.0));
                fs_sorted
                    .iter()
                    .zip(gs_sorted.iter())
                    .all(|((l1, t1), (l2, t2))| l1 == l2 && t1.equiv(t2))
            }
            _ => false,
        }
    }

    /// All paths to bag constructors within this type, in depth-first order
    /// (the `paths(A)` function of Section 4.1).
    pub fn paths(&self) -> Vec<Path> {
        fn go(ty: &Type, acc: &mut Vec<Path>, current: &Path) {
            match ty {
                Type::Base(_) => {}
                Type::Record(fields) => {
                    for (label, t) in fields {
                        go(t, acc, &current.extend_label(label));
                    }
                }
                Type::Bag(inner) => {
                    acc.push(current.clone());
                    go(inner, acc, &current.extend_down());
                }
                Type::Fun(a, b) => {
                    // Function types never occur in flat–nested query results,
                    // but we traverse them anyway for completeness.
                    go(a, acc, current);
                    go(b, acc, current);
                }
            }
        }
        let mut acc = Vec::new();
        go(self, &mut acc, &Path::empty());
        acc
    }

    /// Look up the type reached by following `path`, stopping at a bag
    /// constructor (the outer shredding of the paper stops there too).
    pub fn at_path(&self, path: &Path) -> Option<&Type> {
        let mut ty = self;
        for step in &path.steps {
            match (step, ty) {
                (PathStep::Down, Type::Bag(inner)) => ty = inner,
                (PathStep::Label(l), Type::Record(fields)) => {
                    ty = fields.iter().find(|(fl, _)| fl == l).map(|(_, t)| t)?;
                }
                _ => return None,
            }
        }
        Some(ty)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base(b) => write!(f, "{}", b),
            Type::Record(fields) => {
                write!(f, "<")?;
                for (i, (l, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", l, t)?;
                }
                write!(f, ">")
            }
            Type::Bag(inner) => write!(f, "Bag {}", WrapIfComplex(inner)),
            Type::Fun(a, b) => write!(f, "{} -> {}", WrapIfComplex(a), b),
        }
    }
}

/// Helper that parenthesises function and bag types when nested inside other
/// type constructors, for readable output.
struct WrapIfComplex<'a>(&'a Type);

impl fmt::Display for WrapIfComplex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Type::Fun(_, _) | Type::Bag(_) => write!(f, "({})", self.0),
            _ => write!(f, "{}", self.0),
        }
    }
}

/// One step of a path into a type: descend through a bag constructor (`↓`) or
/// select a record label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// `↓` — go under a `Bag` constructor.
    Down,
    /// `ℓ` — select a record field.
    Label(String),
}

/// A path `p` pointing at a bag constructor inside a type (Section 4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Path {
    pub steps: Vec<PathStep>,
}

impl Path {
    /// The empty path `ε`.
    pub fn empty() -> Path {
        Path { steps: Vec::new() }
    }

    /// Extend the path with a `↓` step (`p.↓`).
    pub fn extend_down(&self) -> Path {
        let mut steps = self.steps.clone();
        steps.push(PathStep::Down);
        Path { steps }
    }

    /// Extend the path with a record label step (`p.ℓ`).
    pub fn extend_label(&self, label: &str) -> Path {
        let mut steps = self.steps.clone();
        steps.push(PathStep::Label(label.to_string()));
        Path { steps }
    }

    /// Is this the empty path?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Split off the first step, if any.
    pub fn split_first(&self) -> Option<(&PathStep, Path)> {
        self.steps.split_first().map(|(head, tail)| {
            (
                head,
                Path {
                    steps: tail.to_vec(),
                },
            )
        })
    }

    /// Number of steps in the path.
    pub fn len(&self) -> usize {
        self.steps.len()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, "ε");
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            match s {
                PathStep::Down => write!(f, "↓")?,
                PathStep::Label(l) => write!(f, "{}", l)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_type() -> Type {
        // Bag <department: String, people: Bag <name: String, tasks: Bag String>>
        Type::bag(Type::record(vec![
            ("department", Type::string()),
            (
                "people",
                Type::bag(Type::record(vec![
                    ("name", Type::string()),
                    ("tasks", Type::bag(Type::string())),
                ])),
            ),
        ]))
    }

    #[test]
    fn nesting_degree_of_result_type_is_three() {
        assert_eq!(result_type().nesting_degree(), 3);
    }

    #[test]
    fn nesting_degree_of_example_from_paper() {
        // Bag <A : Bag Int, B : Bag String> has nesting degree 3.
        let t = Type::bag(Type::record(vec![
            ("A", Type::bag(Type::int())),
            ("B", Type::bag(Type::string())),
        ]));
        assert_eq!(t.nesting_degree(), 3);
    }

    #[test]
    fn paths_of_result_type() {
        let paths = result_type().paths();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0], Path::empty());
        assert_eq!(paths[1], Path::empty().extend_down().extend_label("people"));
        assert_eq!(
            paths[2],
            Path::empty()
                .extend_down()
                .extend_label("people")
                .extend_down()
                .extend_label("tasks")
        );
    }

    #[test]
    fn at_path_navigates_to_inner_bags() {
        let t = result_type();
        let p = Path::empty().extend_down().extend_label("people");
        let at = t.at_path(&p).unwrap();
        assert!(matches!(at, Type::Bag(_)));
        assert_eq!(at.nesting_degree(), 2);
    }

    #[test]
    fn flat_and_nested_predicates() {
        let flat = Type::record(vec![("a", Type::int()), ("b", Type::string())]);
        assert!(flat.is_flat());
        assert!(flat.is_nested());
        let nested = result_type();
        assert!(!nested.is_flat());
        assert!(nested.is_nested());
        let higher = Type::fun(Type::int(), Type::int());
        assert!(!higher.is_nested());
        assert!(!higher.is_flat());
    }

    #[test]
    fn flat_relation_type_check() {
        let rel = Type::bag(Type::record(vec![
            ("dept", Type::string()),
            ("salary", Type::int()),
        ]));
        assert!(rel.is_flat_relation());
        assert!(!result_type().is_flat_relation());
        assert!(!Type::bag(Type::int()).is_flat_relation());
    }

    #[test]
    fn record_equivalence_ignores_field_order() {
        let a = Type::record(vec![("x", Type::int()), ("y", Type::bool())]);
        let b = Type::record(vec![("y", Type::bool()), ("x", Type::int())]);
        assert!(a.equiv(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn tuple_types_use_hash_labels() {
        let t = Type::tuple(vec![Type::int(), Type::string()]);
        assert_eq!(t.field("#1"), Some(&Type::int()));
        assert_eq!(t.field("#2"), Some(&Type::string()));
    }

    #[test]
    fn display_is_readable() {
        let t = result_type();
        let s = format!("{}", t);
        assert!(s.contains("Bag"));
        assert!(s.contains("department"));
    }
}
