//! The denotational semantics N⟦−⟧ of λNRC (Figure 2 of the paper).
//!
//! Bags are interpreted as meta-level lists; the result of a query of nested
//! type is a first-order [`Value`] containing no closures. This evaluator is
//! the *reference semantics* against which the whole shredding pipeline is
//! verified (Theorem 4).

use crate::env::Env;
use crate::schema::Database;
use crate::term::{PrimOp, Term};
use crate::value::Value;
use std::fmt;

/// Errors raised by evaluation. A well-typed closed query never raises any of
/// these; they exist so that the evaluator is total on arbitrary terms.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    UnboundVariable(String),
    /// A `Term::Param` was evaluated without a binding for its name. Supply
    /// one via [`eval_with_params`].
    UnboundParameter(String),
    NoSuchTable(String),
    NotABool(String),
    NotABag(String),
    NotARecord(String),
    NotAFunction(String),
    NoSuchField {
        label: String,
        record: String,
    },
    PrimArity {
        op: PrimOp,
        expected: usize,
        got: usize,
    },
    PrimTypeError {
        op: PrimOp,
        detail: String,
    },
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable {}", x),
            EvalError::UnboundParameter(p) => write!(
                f,
                "unbound parameter ?{} (bind a value for it before evaluating)",
                p
            ),
            EvalError::NoSuchTable(t) => write!(f, "no such table {}", t),
            EvalError::NotABool(v) => write!(f, "expected a boolean, got {}", v),
            EvalError::NotABag(v) => write!(f, "expected a bag, got {}", v),
            EvalError::NotARecord(v) => write!(f, "expected a record, got {}", v),
            EvalError::NotAFunction(v) => write!(f, "expected a function, got {}", v),
            EvalError::NoSuchField { label, record } => {
                write!(f, "no field {} in record {}", label, record)
            }
            EvalError::PrimArity { op, expected, got } => {
                write!(
                    f,
                    "primitive {} expects {} arguments, got {}",
                    op, expected, got
                )
            }
            EvalError::PrimTypeError { op, detail } => {
                write!(f, "type error applying primitive {}: {}", op, detail)
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A parameter binding environment: values for the term's `Term::Param`
/// bind variables, keyed by name.
pub type ParamBindings = std::collections::BTreeMap<String, Value>;

/// Evaluate a closed term against a database: `N⟦M⟧ε`.
pub fn eval(term: &Term, db: &Database) -> Result<Value, EvalError> {
    eval_in(term, &Env::empty(), db)
}

/// Evaluate a term containing `Term::Param` bind variables, supplying their
/// values through a binding environment: `N⟦M⟧ε,σ`.
pub fn eval_with_params(
    term: &Term,
    db: &Database,
    params: &ParamBindings,
) -> Result<Value, EvalError> {
    eval_bound(term, &Env::empty(), db, params)
}

/// Evaluate a term in an environment: `N⟦M⟧ρ`.
pub fn eval_in(term: &Term, env: &Env, db: &Database) -> Result<Value, EvalError> {
    eval_bound(term, env, db, &ParamBindings::new())
}

fn eval_bound(
    term: &Term,
    env: &Env,
    db: &Database,
    params: &ParamBindings,
) -> Result<Value, EvalError> {
    match term {
        Term::Var(x) => env
            .lookup(x)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
        Term::Const(c) => Ok(Value::from_constant(c)),
        Term::Param(name, _) => params
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundParameter(name.clone())),
        Term::PrimApp(op, args) => {
            let vals = args
                .iter()
                .map(|a| eval_bound(a, env, db, params))
                .collect::<Result<Vec<_>, _>>()?;
            apply_prim(*op, &vals)
        }
        Term::Table(t) => db
            .table_rows(t)
            .map(Value::Bag)
            .map_err(|_| EvalError::NoSuchTable(t.clone())),
        Term::If(c, t, e) => {
            let cond = eval_bound(c, env, db, params)?;
            match cond.as_bool() {
                Some(true) => eval_bound(t, env, db, params),
                Some(false) => eval_bound(e, env, db, params),
                None => Err(EvalError::NotABool(format!("{}", cond))),
            }
        }
        Term::Lam(x, body) => Ok(Value::Closure {
            param: x.clone(),
            body: body.clone(),
            env: env.clone(),
        }),
        Term::App(f, a) => {
            let fun = eval_bound(f, env, db, params)?;
            let arg = eval_bound(a, env, db, params)?;
            match fun {
                Value::Closure {
                    param,
                    body,
                    env: closure_env,
                } => eval_bound(&body, &closure_env.extend(&param, arg), db, params),
                other => Err(EvalError::NotAFunction(format!("{}", other))),
            }
        }
        Term::Record(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            for (l, t) in fields {
                out.push((l.clone(), eval_bound(t, env, db, params)?));
            }
            Ok(Value::Record(out))
        }
        Term::Project(t, label) => {
            let v = eval_bound(t, env, db, params)?;
            match &v {
                Value::Record(_) => v
                    .field(label)
                    .cloned()
                    .ok_or_else(|| EvalError::NoSuchField {
                        label: label.clone(),
                        record: format!("{}", v),
                    }),
                other => Err(EvalError::NotARecord(format!("{}", other))),
            }
        }
        Term::Empty(t) => {
            let v = eval_bound(t, env, db, params)?;
            match v {
                Value::Bag(items) => Ok(Value::Bool(items.is_empty())),
                other => Err(EvalError::NotABag(format!("{}", other))),
            }
        }
        Term::Singleton(t) => Ok(Value::Bag(vec![eval_bound(t, env, db, params)?])),
        Term::EmptyBag(_) => Ok(Value::Bag(Vec::new())),
        Term::Union(l, r) => {
            let lv = eval_bound(l, env, db, params)?;
            let rv = eval_bound(r, env, db, params)?;
            match (lv, rv) {
                (Value::Bag(mut xs), Value::Bag(ys)) => {
                    xs.extend(ys);
                    Ok(Value::Bag(xs))
                }
                (l, r) => Err(EvalError::NotABag(format!("{} ⊎ {}", l, r))),
            }
        }
        Term::For(x, src, body) => {
            let source = eval_bound(src, env, db, params)?;
            let items = match source {
                Value::Bag(items) => items,
                other => return Err(EvalError::NotABag(format!("{}", other))),
            };
            let mut out = Vec::new();
            for item in items {
                let inner = eval_bound(body, &env.extend(x, item), db, params)?;
                match inner {
                    Value::Bag(mut ys) => out.append(&mut ys),
                    other => return Err(EvalError::NotABag(format!("{}", other))),
                }
            }
            Ok(Value::Bag(out))
        }
    }
}

/// Apply a primitive operation to evaluated arguments.
pub fn apply_prim(op: PrimOp, args: &[Value]) -> Result<Value, EvalError> {
    if args.len() != op.arity() {
        return Err(EvalError::PrimArity {
            op,
            expected: op.arity(),
            got: args.len(),
        });
    }
    let type_err = |detail: String| EvalError::PrimTypeError { op, detail };
    match op {
        PrimOp::Eq => Ok(Value::Bool(base_eq(&args[0], &args[1]))),
        PrimOp::Neq => Ok(Value::Bool(!base_eq(&args[0], &args[1]))),
        PrimOp::Lt | PrimOp::Gt | PrimOp::Le | PrimOp::Ge => {
            let ord = base_cmp(&args[0], &args[1])
                .ok_or_else(|| type_err(format!("cannot compare {} and {}", args[0], args[1])))?;
            let b = match op {
                PrimOp::Lt => ord == std::cmp::Ordering::Less,
                PrimOp::Gt => ord == std::cmp::Ordering::Greater,
                PrimOp::Le => ord != std::cmp::Ordering::Greater,
                PrimOp::Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        PrimOp::And | PrimOp::Or => match (&args[0], &args[1]) {
            (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(if op == PrimOp::And {
                *a && *b
            } else {
                *a || *b
            })),
            _ => Err(type_err("boolean operands required".to_string())),
        },
        PrimOp::Not => match &args[0] {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(type_err(format!("boolean operand required, got {}", other))),
        },
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Mod => {
            match (&args[0], &args[1]) {
                (Value::Int(a), Value::Int(b)) => {
                    let r = match op {
                        PrimOp::Add => a.wrapping_add(*b),
                        PrimOp::Sub => a.wrapping_sub(*b),
                        PrimOp::Mul => a.wrapping_mul(*b),
                        PrimOp::Div => {
                            if *b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            a / b
                        }
                        PrimOp::Mod => {
                            if *b == 0 {
                                return Err(EvalError::DivisionByZero);
                            }
                            a % b
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Int(r))
                }
                _ => Err(type_err("integer operands required".to_string())),
            }
        }
        PrimOp::Concat => match (&args[0], &args[1]) {
            (Value::String(a), Value::String(b)) => Ok(Value::string(format!("{}{}", a, b))),
            _ => Err(type_err("string operands required".to_string())),
        },
    }
}

/// Equality at base type (the only equality the primitive signature allows).
fn base_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::String(x), Value::String(y)) => x == y,
        (Value::Unit, Value::Unit) => true,
        _ => false,
    }
}

fn base_cmp(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::String(x), Value::String(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// Evaluate a constant-free, table-free term (useful in tests).
pub fn eval_pure(term: &Term) -> Result<Value, EvalError> {
    let db = Database::new(crate::schema::Schema::new());
    eval(term, &db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::schema::{Schema, TableSchema};
    use crate::types::BaseType;

    fn tiny_db() -> Database {
        let schema = Schema::new().with_table(
            TableSchema::new(
                "items",
                vec![("id", BaseType::Int), ("name", BaseType::String)],
            )
            .with_key(vec!["id"]),
        );
        let mut db = Database::new(schema);
        for (id, name) in [(1, "a"), (2, "b"), (3, "c")] {
            db.insert_row(
                "items",
                vec![("id", Value::Int(id)), ("name", Value::string(name))],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn constants_and_primitives() {
        assert_eq!(eval_pure(&add(int(2), int(3))), Ok(Value::Int(5)));
        assert_eq!(
            eval_pure(&and(boolean(true), boolean(false))),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            eval_pure(&concat(string("ab"), string("cd"))),
            Ok(Value::string("abcd"))
        );
        assert_eq!(eval_pure(&eq(int(1), int(1))), Ok(Value::Bool(true)));
        assert_eq!(
            eval_pure(&neq(string("x"), string("y"))),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let t = Term::PrimApp(PrimOp::Div, vec![int(1), int(0)]);
        assert_eq!(eval_pure(&t), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn comprehension_over_table() {
        let db = tiny_db();
        // for (x <- items) return x.name
        let q = for_in("x", table("items"), singleton(project(var("x"), "name")));
        let v = eval(&q, &db).unwrap();
        assert!(v.multiset_eq(&Value::bag(vec![
            Value::string("a"),
            Value::string("b"),
            Value::string("c"),
        ])));
    }

    #[test]
    fn where_clause_filters() {
        let db = tiny_db();
        let q = for_where(
            "x",
            table("items"),
            gt(project(var("x"), "id"), int(1)),
            singleton(project(var("x"), "id")),
        );
        let v = eval(&q, &db).unwrap();
        assert!(v.multiset_eq(&Value::bag(vec![Value::Int(2), Value::Int(3)])));
    }

    #[test]
    fn union_preserves_multiplicity() {
        let db = tiny_db();
        let q = union(
            for_in("x", table("items"), singleton(int(1))),
            for_in("x", table("items"), singleton(int(1))),
        );
        let v = eval(&q, &db).unwrap();
        assert_eq!(v.as_bag().unwrap().len(), 6);
    }

    #[test]
    fn higher_order_functions_evaluate() {
        let db = tiny_db();
        // (λf. f 21) (λx. x + x)
        let q = app(
            lam("f", app(var("f"), int(21))),
            lam("x", add(var("x"), var("x"))),
        );
        assert_eq!(eval(&q, &db), Ok(Value::Int(42)));
    }

    #[test]
    fn empty_test() {
        let db = tiny_db();
        let q = is_empty(for_where(
            "x",
            table("items"),
            gt(project(var("x"), "id"), int(100)),
            singleton(var("x")),
        ));
        assert_eq!(eval(&q, &db), Ok(Value::Bool(true)));
    }

    #[test]
    fn nested_result_query() {
        let db = tiny_db();
        // for (x <- items) return <name = x.name, copies = for (y <- items) where (y.id <= x.id) return y.id>
        let q = for_in(
            "x",
            table("items"),
            singleton(record(vec![
                ("name", project(var("x"), "name")),
                (
                    "copies",
                    for_where(
                        "y",
                        table("items"),
                        le(project(var("y"), "id"), project(var("x"), "id")),
                        singleton(project(var("y"), "id")),
                    ),
                ),
            ])),
        );
        let v = eval(&q, &db).unwrap();
        let items = v.as_bag().unwrap();
        assert_eq!(items.len(), 3);
        // Find the record for "c" and check that its inner bag has 3 elements.
        let c = items
            .iter()
            .find(|r| r.field("name") == Some(&Value::string("c")))
            .unwrap();
        assert_eq!(c.field("copies").unwrap().as_bag().unwrap().len(), 3);
    }

    #[test]
    fn unbound_variable_errors() {
        assert_eq!(
            eval_pure(&var("nope")),
            Err(EvalError::UnboundVariable("nope".to_string()))
        );
    }

    #[test]
    fn missing_table_errors() {
        let db = tiny_db();
        assert_eq!(
            eval(&table("missing"), &db),
            Err(EvalError::NoSuchTable("missing".to_string()))
        );
    }

    #[test]
    fn closures_capture_their_environment() {
        let db = tiny_db();
        // (λx. λy. x + y) 1 2
        let q = app(
            app(lam("x", lam("y", add(var("x"), var("y")))), int(1)),
            int(2),
        );
        assert_eq!(eval(&q, &db), Ok(Value::Int(3)));
    }
}
