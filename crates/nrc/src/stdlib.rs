//! Higher-order query combinators from Section 3 of the paper.
//!
//! These are *host-level* functions producing λNRC terms — exactly how a Links
//! or LINQ programmer uses (nonrecursive) functions to define query patterns
//! that are later inlined by normalisation:
//!
//! ```text
//! filter p xs    = for (x ← xs) where (p x) return x
//! any xs p       = ¬(empty(for (x ← xs) where (p x) return ⟨⟩))
//! all xs p       = ¬(any xs (λx. ¬(p x)))
//! contains xs u  = any xs (λx. x = u)
//! ```
//!
//! Each combinator takes the predicate as a Rust closure from a *variable
//! term* to a boolean term, so that the generated λNRC stays first-order where
//! possible; [`filter_fn`]-style variants that build an explicit λ-abstraction
//! are also provided to exercise the higher-order normalisation path.

use crate::builder::*;
use crate::term::Term;

/// A fresh-name supply for the combinators. Names are suffixed with a counter
/// to keep bound variables distinct across nested uses.
fn fresh(prefix: &str, used_in: &[&Term]) -> String {
    // Pick the smallest suffix not appearing free or bound in the argument
    // terms. A textual check on the debug rendering is conservative but safe.
    let rendered: String = used_in.iter().map(|t| format!("{:?}", t)).collect();
    for i in 0.. {
        let candidate = if i == 0 {
            prefix.to_string()
        } else {
            format!("{}{}", prefix, i)
        };
        if !rendered.contains(&format!("\"{}\"", candidate)) {
            return candidate;
        }
    }
    unreachable!()
}

/// `filter p xs = for (x ← xs) where (p x) return x`, with `p` given as a
/// host-level predicate on the bound variable.
pub fn filter(xs: Term, p: impl FnOnce(Term) -> Term) -> Term {
    let x = fresh("x", &[&xs]);
    for_where(&x, xs, p(var(&x)), singleton(var(&x)))
}

/// `filter` with an explicit λNRC predicate term, producing a higher-order
/// term `for (x ← xs) where (p(x)) return x` where `p` is applied, exercising
/// β-reduction during normalisation.
pub fn filter_fn(p: Term, xs: Term) -> Term {
    let x = fresh("x", &[&xs, &p]);
    for_where(&x, xs, app(p, var(&x)), singleton(var(&x)))
}

/// `any xs p = ¬(empty(for (x ← xs) where (p x) return ⟨⟩))`.
pub fn any(xs: Term, p: impl FnOnce(Term) -> Term) -> Term {
    let x = fresh("x", &[&xs]);
    not(is_empty(for_where(
        &x,
        xs,
        p(var(&x)),
        singleton(Term::Record(Vec::new())),
    )))
}

/// `all xs p = ¬(any xs (λx.¬(p x)))`.
pub fn all(xs: Term, p: impl FnOnce(Term) -> Term) -> Term {
    not(any(xs, |x| not(p(x))))
}

/// `contains xs u = any xs (λx. x = u)`.
pub fn contains(xs: Term, u: Term) -> Term {
    any(xs, |x| eq(x, u))
}

/// `getTasks xs f = for (x ← xs) return ⟨name = x.name, tasks = f x⟩`
/// (Section 3). The `f` parameter initialises the `tasks` field.
pub fn get_tasks(xs: Term, f: impl FnOnce(Term) -> Term) -> Term {
    let x = fresh("x", &[&xs]);
    for_in(
        &x,
        xs,
        singleton(record(vec![
            ("name", project(var(&x), "name")),
            ("tasks", f(var(&x))),
        ])),
    )
}

/// `isPoor x = x.salary < 1000`.
pub fn is_poor(x: Term) -> Term {
    lt(project(x, "salary"), int(1000))
}

/// `isRich x = x.salary > 1000000`.
pub fn is_rich(x: Term) -> Term {
    gt(project(x, "salary"), int(1000000))
}

/// `outliers xs = filter (λx. isRich x ∨ isPoor x) xs`.
pub fn outliers(xs: Term) -> Term {
    filter(xs, |x| or(is_rich(x.clone()), is_poor(x)))
}

/// `clients xs = filter (λx. x.client) xs`.
pub fn clients(xs: Term) -> Term {
    filter(xs, |x| project(x, "client"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::schema::{Database, Schema, TableSchema};
    use crate::types::BaseType;
    use crate::value::Value;

    fn db() -> Database {
        let schema = Schema::new().with_table(
            TableSchema::new(
                "employees",
                vec![
                    ("id", BaseType::Int),
                    ("name", BaseType::String),
                    ("salary", BaseType::Int),
                    ("client", BaseType::Bool),
                ],
            )
            .with_key(vec!["id"]),
        );
        let mut db = Database::new(schema);
        for (id, name, salary, client) in [
            (1, "Alex", 20000, false),
            (2, "Bert", 900, false),
            (3, "Erik", 2000000, true),
        ] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(salary)),
                    ("client", Value::Bool(client)),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let q = filter(table("employees"), |x| gt(project(x, "salary"), int(10000)));
        let v = eval(&q, &db()).unwrap();
        assert_eq!(v.as_bag().unwrap().len(), 2);
    }

    #[test]
    fn outliers_matches_poor_and_rich() {
        let q = outliers(table("employees"));
        let v = eval(&q, &db()).unwrap();
        let names: Vec<_> = v
            .as_bag()
            .unwrap()
            .iter()
            .map(|r| r.field("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"Bert".to_string()));
        assert!(names.contains(&"Erik".to_string()));
    }

    #[test]
    fn any_all_contains_behave_like_their_spec() {
        let d = db();
        let anyone_rich = any(table("employees"), is_rich);
        assert_eq!(eval(&anyone_rich, &d), Ok(Value::Bool(true)));

        let all_rich = all(table("employees"), is_rich);
        assert_eq!(eval(&all_rich, &d), Ok(Value::Bool(false)));

        let all_named = all(table("employees"), |x| neq(project(x, "name"), string("")));
        assert_eq!(eval(&all_named, &d), Ok(Value::Bool(true)));

        let names = for_in(
            "e",
            table("employees"),
            singleton(project(var("e"), "name")),
        );
        assert_eq!(
            eval(&contains(names.clone(), string("Alex")), &d),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            eval(&contains(names, string("Zoe")), &d),
            Ok(Value::Bool(false))
        );
    }

    #[test]
    fn clients_filters_on_flag() {
        let q = clients(table("employees"));
        let v = eval(&q, &db()).unwrap();
        assert_eq!(v.as_bag().unwrap().len(), 1);
    }

    #[test]
    fn get_tasks_builds_name_task_records() {
        let q = get_tasks(table("employees"), |_| singleton(string("buy")));
        let v = eval(&q, &db()).unwrap();
        for r in v.as_bag().unwrap() {
            assert!(r.field("name").is_some());
            assert_eq!(
                r.field("tasks").unwrap().as_bag().unwrap(),
                &[Value::string("buy")]
            );
        }
    }

    #[test]
    fn filter_fn_builds_a_higher_order_term() {
        let q = filter_fn(lam("y", is_rich(var("y"))), table("employees"));
        // The term contains a β-redex but still evaluates correctly.
        let v = eval(&q, &db()).unwrap();
        assert_eq!(v.as_bag().unwrap().len(), 1);
    }

    #[test]
    fn fresh_names_avoid_clashes_with_argument_terms() {
        // The outer filter binds x; the inner one must pick a different name.
        let inner = filter(table("employees"), is_rich);
        let outer = filter(inner.clone(), is_poor);
        let v = eval(&outer, &db()).unwrap();
        assert_eq!(v.as_bag().unwrap().len(), 0);
        // And nesting in the other order also works.
        let outer2 = filter(filter(table("employees"), is_poor), |x| {
            gt(project(x, "salary"), int(0))
        });
        let v2 = eval(&outer2, &db()).unwrap();
        assert_eq!(v2.as_bag().unwrap().len(), 1);
    }
}
