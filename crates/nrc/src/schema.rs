//! Database schemas (the fixed signature Σ of the paper) and in-memory
//! database instances used by the reference nested semantics.
//!
//! Tables are constrained to have *flat relation type*
//! `Bag ⟨ℓ1 : O1, …, ℓn : On⟩`. In SQL, tables do not have a list semantics by
//! default; following Section 2.1 we impose one by ordering rows by all
//! columns in lexicographic order of field names.

use crate::types::{BaseType, Type};
use crate::value::{compare_canonical, Value};
use std::collections::BTreeMap;
use std::fmt;

/// The schema of one table: ordered column names with base types, plus an
/// optional key (a set of columns guaranteed unique per row), which the
/// *natural* indexing scheme of Section 6.1 requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<(String, BaseType)>,
    /// Columns forming a key for the table (e.g. `["id"]`), if any.
    pub key: Vec<String>,
}

impl TableSchema {
    /// Create a table schema without a declared key.
    pub fn new<S: Into<String>>(name: S, columns: Vec<(&str, BaseType)>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|(c, t)| (c.to_string(), t))
                .collect(),
            key: Vec::new(),
        }
    }

    /// Declare a key for the table.
    pub fn with_key(mut self, key: Vec<&str>) -> TableSchema {
        self.key = key.into_iter().map(|s| s.to_string()).collect();
        self
    }

    /// The λNRC type of this table: `Bag ⟨columns⟩`.
    pub fn row_type(&self) -> Type {
        Type::Record(
            self.columns
                .iter()
                .map(|(c, t)| (c.clone(), Type::Base(*t)))
                .collect(),
        )
    }

    /// The relation type `Bag ⟨…⟩` of the table.
    pub fn relation_type(&self) -> Type {
        Type::Bag(Box::new(self.row_type()))
    }

    /// The type of a column, if present.
    pub fn column_type(&self, column: &str) -> Option<BaseType> {
        self.columns
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, t)| *t)
    }

    /// Does the table have a declared key?
    pub fn has_key(&self) -> bool {
        !self.key.is_empty()
    }
}

/// The signature Σ: the set of tables a query may mention.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    tables: BTreeMap<String, TableSchema>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Add a table to the schema.
    pub fn add_table(&mut self, table: TableSchema) -> &mut Self {
        self.tables.insert(table.name.clone(), table);
        self
    }

    /// Builder-style variant of [`Schema::add_table`].
    pub fn with_table(mut self, table: TableSchema) -> Schema {
        self.add_table(table);
        self
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Iterate over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.tables.values() {
            write!(f, "{}(", t.name)?;
            for (i, (c, ty)) in t.columns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} : {}", c, ty)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

/// An in-memory database instance: an interpretation ⟦t⟧ of every table in a
/// schema as a list of flat record values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    pub schema: Schema,
    data: BTreeMap<String, Vec<Value>>,
}

impl Database {
    /// An empty database over a schema.
    pub fn new(schema: Schema) -> Database {
        let data = schema
            .tables()
            .map(|t| (t.name.clone(), Vec::new()))
            .collect();
        Database { schema, data }
    }

    /// Insert a row (a flat record value) into a table. The row is checked
    /// against the table schema.
    pub fn insert(&mut self, table: &str, row: Value) -> Result<(), DatabaseError> {
        let schema = self
            .schema
            .table(table)
            .ok_or_else(|| DatabaseError::NoSuchTable(table.to_string()))?;
        if !row.has_type(&schema.row_type()) {
            return Err(DatabaseError::RowTypeMismatch {
                table: table.to_string(),
                row: format!("{}", row),
            });
        }
        self.data
            .get_mut(table)
            .expect("data map tracks schema")
            .push(row);
        Ok(())
    }

    /// Insert a row given as label/value pairs.
    pub fn insert_row(
        &mut self,
        table: &str,
        fields: Vec<(&str, Value)>,
    ) -> Result<(), DatabaseError> {
        self.insert(table, Value::record(fields))
    }

    /// Insert many rows into one table, checking each against the table
    /// schema. Equivalent to calling [`insert`](Self::insert) per row but
    /// with constant per-batch setup: the expected row type is computed
    /// once for the whole batch instead of being rebuilt per row, which is
    /// what keeps bulk data generation (e.g. `datagen` at 256+ departments)
    /// linear with a small constant rather than paying a per-row type
    /// construction. On a type mismatch, rows before the offending one stay
    /// inserted (same granularity as repeated `insert` calls).
    pub fn insert_bulk(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Value>,
    ) -> Result<(), DatabaseError> {
        let schema = self
            .schema
            .table(table)
            .ok_or_else(|| DatabaseError::NoSuchTable(table.to_string()))?;
        let row_type = schema.row_type();
        let data = self.data.get_mut(table).expect("data map tracks schema");
        for row in rows {
            if !row.has_type(&row_type) {
                return Err(DatabaseError::RowTypeMismatch {
                    table: table.to_string(),
                    row: format!("{}", row),
                });
            }
            data.push(row);
        }
        Ok(())
    }

    /// The rows of a table in *canonical order* (ordered by all columns in
    /// lexicographic order of field names), which is the list interpretation
    /// ⟦t⟧ the paper assumes.
    pub fn table_rows(&self, table: &str) -> Result<Vec<Value>, DatabaseError> {
        let rows = self
            .data
            .get(table)
            .ok_or_else(|| DatabaseError::NoSuchTable(table.to_string()))?;
        let mut sorted: Vec<Value> = rows.clone();
        sorted.sort_by(|a, b| compare_canonical(&a.canonical(), &b.canonical()));
        Ok(sorted)
    }

    /// The rows of a table in insertion order (used by data generators and
    /// bulk export to the SQL engine; canonical order is only needed for the
    /// reference semantics).
    pub fn table_rows_unordered(&self, table: &str) -> Result<&[Value], DatabaseError> {
        self.data
            .get(table)
            .map(|v| v.as_slice())
            .ok_or_else(|| DatabaseError::NoSuchTable(table.to_string()))
    }

    /// Number of rows in a table (0 if absent).
    pub fn row_count(&self, table: &str) -> usize {
        self.data.get(table).map(|v| v.len()).unwrap_or(0)
    }

    /// Total number of rows in the database.
    pub fn total_rows(&self) -> usize {
        self.data.values().map(Vec::len).sum()
    }
}

/// Errors raised by database construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    NoSuchTable(String),
    RowTypeMismatch { table: String, row: String },
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::NoSuchTable(t) => write!(f, "no such table: {}", t),
            DatabaseError::RowTypeMismatch { table, row } => {
                write!(f, "row {} does not match schema of table {}", row, table)
            }
        }
    }
}

impl std::error::Error for DatabaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new().with_table(
            TableSchema::new(
                "employees",
                vec![
                    ("id", BaseType::Int),
                    ("dept", BaseType::String),
                    ("name", BaseType::String),
                    ("salary", BaseType::Int),
                ],
            )
            .with_key(vec!["id"]),
        )
    }

    #[test]
    fn table_types_are_flat_relations() {
        let s = schema();
        assert!(s
            .table("employees")
            .unwrap()
            .relation_type()
            .is_flat_relation());
    }

    #[test]
    fn insert_checks_row_type() {
        let mut db = Database::new(schema());
        let ok = db.insert_row(
            "employees",
            vec![
                ("id", Value::Int(1)),
                ("dept", Value::string("Product")),
                ("name", Value::string("Alex")),
                ("salary", Value::Int(20000)),
            ],
        );
        assert!(ok.is_ok());
        let bad = db.insert_row("employees", vec![("id", Value::Int(1))]);
        assert!(matches!(bad, Err(DatabaseError::RowTypeMismatch { .. })));
        let missing = db.insert_row("nope", vec![]);
        assert!(matches!(missing, Err(DatabaseError::NoSuchTable(_))));
    }

    #[test]
    fn table_rows_are_canonically_ordered() {
        let mut db = Database::new(schema());
        for (id, name) in [(2, "Bert"), (1, "Alex")] {
            db.insert_row(
                "employees",
                vec![
                    ("id", Value::Int(id)),
                    ("dept", Value::string("Product")),
                    ("name", Value::string(name)),
                    ("salary", Value::Int(100)),
                ],
            )
            .unwrap();
        }
        let rows = db.table_rows("employees").unwrap();
        assert_eq!(rows[0].field("id"), Some(&Value::Int(1)));
        assert_eq!(rows[1].field("id"), Some(&Value::Int(2)));
    }

    #[test]
    fn row_counts() {
        let mut db = Database::new(schema());
        assert_eq!(db.row_count("employees"), 0);
        db.insert_row(
            "employees",
            vec![
                ("id", Value::Int(1)),
                ("dept", Value::string("Product")),
                ("name", Value::string("Alex")),
                ("salary", Value::Int(20000)),
            ],
        )
        .unwrap();
        assert_eq!(db.row_count("employees"), 1);
        assert_eq!(db.total_rows(), 1);
    }
}
