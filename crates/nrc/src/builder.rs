//! Ergonomic constructors for λNRC terms.
//!
//! Queries in the paper are written in a comprehension syntax
//! (`for … where … return …`); these helpers let Rust code mirror that syntax
//! closely. See `crates/nrc/src/stdlib.rs` and the examples for usage.

use crate::term::{Constant, PrimOp, Term};
use crate::types::{BaseType, Type};

/// A variable reference `x`.
pub fn var(name: &str) -> Term {
    Term::Var(name.to_string())
}

/// An integer constant.
pub fn int(i: i64) -> Term {
    Term::Const(Constant::Int(i))
}

/// A boolean constant.
pub fn boolean(b: bool) -> Term {
    Term::Const(Constant::Bool(b))
}

/// A string constant.
pub fn string(s: &str) -> Term {
    Term::Const(Constant::String(s.to_string()))
}

/// The unit constant.
pub fn unit() -> Term {
    Term::Const(Constant::Unit)
}

/// A typed query parameter `?name : ty` (a bind variable supplied at
/// execution time; see `Shredder::execute_bound` in the `shredding` crate).
pub fn param(name: &str, ty: BaseType) -> Term {
    Term::Param(name.to_string(), ty)
}

/// An integer-typed parameter `?name : Int`.
pub fn int_param(name: &str) -> Term {
    param(name, BaseType::Int)
}

/// A string-typed parameter `?name : String`.
pub fn string_param(name: &str) -> Term {
    param(name, BaseType::String)
}

/// A boolean-typed parameter `?name : Bool`.
pub fn bool_param(name: &str) -> Term {
    param(name, BaseType::Bool)
}

/// A table reference `table t`.
pub fn table(name: &str) -> Term {
    Term::Table(name.to_string())
}

/// A record `⟨ℓ1 = M1, …⟩`.
pub fn record<I>(fields: I) -> Term
where
    I: IntoIterator<Item = (&'static str, Term)>,
{
    Term::Record(
        fields
            .into_iter()
            .map(|(l, t)| (l.to_string(), t))
            .collect(),
    )
}

/// A record with owned labels.
pub fn record_owned<I>(fields: I) -> Term
where
    I: IntoIterator<Item = (String, Term)>,
{
    Term::Record(fields.into_iter().collect())
}

/// A tuple `⟨M1, …, Mn⟩`, encoded as a record with labels `#1 … #n`.
pub fn tuple<I: IntoIterator<Item = Term>>(items: I) -> Term {
    Term::Record(
        items
            .into_iter()
            .enumerate()
            .map(|(i, t)| (format!("#{}", i + 1), t))
            .collect(),
    )
}

/// A projection `M.ℓ`.
pub fn project(t: Term, label: &str) -> Term {
    Term::Project(Box::new(t), label.to_string())
}

/// A λ-abstraction `λx.M`.
pub fn lam(x: &str, body: Term) -> Term {
    Term::Lam(x.to_string(), Box::new(body))
}

/// Function application `M N`.
pub fn app(f: Term, a: Term) -> Term {
    Term::App(Box::new(f), Box::new(a))
}

/// A conditional `if c then t else e`.
pub fn if_then_else(c: Term, t: Term, e: Term) -> Term {
    Term::If(Box::new(c), Box::new(t), Box::new(e))
}

/// A conditional over bags with an implicit `∅` else-branch — the
/// `where` clause of a comprehension: `if c then t else ∅`.
pub fn where_(c: Term, t: Term) -> Term {
    Term::If(Box::new(c), Box::new(t), Box::new(Term::EmptyBag(None)))
}

/// A singleton bag `return M`.
pub fn singleton(t: Term) -> Term {
    Term::Singleton(Box::new(t))
}

/// The empty bag `∅` without a type annotation.
pub fn empty_bag() -> Term {
    Term::EmptyBag(None)
}

/// The empty bag `∅ : Bag A` with element type annotation `A`.
pub fn empty_bag_of(elem: Type) -> Term {
    Term::EmptyBag(Some(elem))
}

/// Bag union `M ⊎ N`.
pub fn union(l: Term, r: Term) -> Term {
    Term::Union(Box::new(l), Box::new(r))
}

/// The emptiness test `empty M`.
pub fn is_empty(t: Term) -> Term {
    Term::Empty(Box::new(t))
}

/// A comprehension `for (x ← src) body`.
pub fn for_in(x: &str, src: Term, body: Term) -> Term {
    Term::For(x.to_string(), Box::new(src), Box::new(body))
}

/// A comprehension with a `where` clause:
/// `for (x ← src) where cond return … ≡ for (x ← src) (if cond then body else ∅)`.
pub fn for_where(x: &str, src: Term, cond: Term, body: Term) -> Term {
    for_in(x, src, where_(cond, body))
}

/// Equality `M = N`.
pub fn eq(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Eq, vec![l, r])
}

/// Disequality `M <> N`.
pub fn neq(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Neq, vec![l, r])
}

/// Less-than.
pub fn lt(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Lt, vec![l, r])
}

/// Greater-than.
pub fn gt(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Gt, vec![l, r])
}

/// Less-or-equal.
pub fn le(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Le, vec![l, r])
}

/// Greater-or-equal.
pub fn ge(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Ge, vec![l, r])
}

/// Conjunction.
pub fn and(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::And, vec![l, r])
}

/// Disjunction.
pub fn or(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Or, vec![l, r])
}

/// Negation.
pub fn not(t: Term) -> Term {
    Term::PrimApp(PrimOp::Not, vec![t])
}

/// Integer addition.
pub fn add(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Add, vec![l, r])
}

/// Integer subtraction.
pub fn sub(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Sub, vec![l, r])
}

/// Integer multiplication.
pub fn mul(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Mul, vec![l, r])
}

/// String concatenation.
pub fn concat(l: Term, r: Term) -> Term {
    Term::PrimApp(PrimOp::Concat, vec![l, r])
}

/// Fold a list of boolean terms into a conjunction (`true` when empty).
pub fn conj<I: IntoIterator<Item = Term>>(terms: I) -> Term {
    let mut it = terms.into_iter();
    match it.next() {
        None => boolean(true),
        Some(first) => it.fold(first, and),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn where_builds_conditional_with_empty_else() {
        let t = where_(boolean(true), singleton(int(1)));
        match t {
            Term::If(_, _, e) => assert_eq!(*e, Term::EmptyBag(None)),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn conj_of_empty_is_true() {
        assert_eq!(conj(vec![]), boolean(true));
    }

    #[test]
    fn conj_folds_left() {
        let t = conj(vec![var("a"), var("b"), var("c")]);
        assert_eq!(t, and(and(var("a"), var("b")), var("c")));
    }

    #[test]
    fn tuple_uses_positional_labels() {
        let t = tuple(vec![int(1), string("x")]);
        match t {
            Term::Record(fields) => {
                assert_eq!(fields[0].0, "#1");
                assert_eq!(fields[1].0, "#2");
            }
            other => panic!("unexpected {:?}", other),
        }
    }
}
