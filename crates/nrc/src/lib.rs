//! # nrc — the higher-order nested relational calculus (λNRC)
//!
//! λNRC is the source language of the query shredding translation of
//! Cheney, Lindley and Wadler, *"Query shredding: efficient relational
//! evaluation of queries over nested multisets"*, SIGMOD 2014. It is a core
//! calculus for the query fragments of Links, Ferry and LINQ: records, bags
//! (multisets), first-class functions and comprehensions over flat database
//! tables.
//!
//! This crate provides:
//!
//! * the type language ([`types::Type`]) with paths and nesting degree,
//! * the term language ([`term::Term`]) with capture-avoiding substitution,
//! * ergonomic constructors ([`builder`]) mirroring the paper's
//!   `for … where … return …` syntax,
//! * a bidirectional type checker ([`typecheck`]) implementing Figure 12,
//! * the reference denotational semantics N⟦−⟧ ([`eval`]) of Figure 2 over an
//!   in-memory [`schema::Database`],
//! * the higher-order query combinators of Section 3 ([`stdlib`]).
//!
//! The shredding pipeline itself lives in the `shredding` crate; the SQL
//! substrate lives in `sqlengine`.
//!
//! ## Quick example
//!
//! ```
//! use nrc::builder::*;
//! use nrc::schema::{Database, Schema, TableSchema};
//! use nrc::types::BaseType;
//! use nrc::value::Value;
//!
//! let schema = Schema::new().with_table(
//!     TableSchema::new("items", vec![("id", BaseType::Int), ("name", BaseType::String)])
//!         .with_key(vec!["id"]),
//! );
//! let mut db = Database::new(schema);
//! db.insert_row("items", vec![("id", Value::Int(1)), ("name", Value::string("widget"))]).unwrap();
//!
//! // for (x ← items) where (x.id = 1) return x.name
//! let query = for_where(
//!     "x",
//!     table("items"),
//!     eq(project(var("x"), "id"), int(1)),
//!     singleton(project(var("x"), "name")),
//! );
//! let result = nrc::eval::eval(&query, &db).unwrap();
//! assert_eq!(result, Value::bag(vec![Value::string("widget")]));
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod env;
pub mod eval;
pub mod pretty;
pub mod schema;
pub mod stdlib;
pub mod term;
pub mod typecheck;
pub mod types;
pub mod value;

pub use env::Env;
pub use eval::{eval, eval_in, eval_with_params, EvalError, ParamBindings};
pub use schema::{Database, DatabaseError, Schema, TableSchema};
pub use term::{Constant, PrimOp, Term};
pub use typecheck::{typecheck, typecheck_against, Context, TypeError};
pub use types::{BaseType, Path, PathStep, Type};
pub use value::Value;
