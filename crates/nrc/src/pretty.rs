//! Pretty printing of λNRC terms in the paper's comprehension syntax.

use crate::term::{PrimOp, Term};
use std::fmt;

/// Render a term in a compact single-line form.
pub fn pretty(term: &Term) -> String {
    let mut s = String::new();
    write_term(&mut s, term).expect("writing to a String cannot fail");
    s
}

fn write_term(out: &mut String, term: &Term) -> fmt::Result {
    use fmt::Write;
    match term {
        Term::Var(x) => write!(out, "{}", x),
        Term::Const(c) => write!(out, "{}", c),
        Term::Param(name, ty) => write!(out, "?{}:{}", name, ty),
        Term::PrimApp(PrimOp::Not, args) => {
            write!(out, "not(")?;
            write_term(out, &args[0])?;
            write!(out, ")")
        }
        Term::PrimApp(op, args) if args.len() == 2 => {
            write!(out, "(")?;
            write_term(out, &args[0])?;
            write!(out, " {} ", op)?;
            write_term(out, &args[1])?;
            write!(out, ")")
        }
        Term::PrimApp(op, args) => {
            write!(out, "{}(", op)?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write_term(out, a)?;
            }
            write!(out, ")")
        }
        Term::Table(t) => write!(out, "table {}", t),
        Term::If(c, t, e) => {
            // A conditional whose else-branch is ∅ is a where clause.
            if matches!(e.as_ref(), Term::EmptyBag(_)) {
                write!(out, "where ")?;
                write_term(out, c)?;
                write!(out, " ")?;
                write_term(out, t)
            } else {
                write!(out, "if ")?;
                write_term(out, c)?;
                write!(out, " then ")?;
                write_term(out, t)?;
                write!(out, " else ")?;
                write_term(out, e)
            }
        }
        Term::Lam(x, body) => {
            write!(out, "λ{}. ", x)?;
            write_term(out, body)
        }
        Term::App(f, a) => {
            write_term(out, f)?;
            write!(out, "(")?;
            write_term(out, a)?;
            write!(out, ")")
        }
        Term::Record(fields) => {
            write!(out, "<")?;
            for (i, (l, t)) in fields.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write!(out, "{} = ", l)?;
                write_term(out, t)?;
            }
            write!(out, ">")
        }
        Term::Project(t, l) => {
            write_term(out, t)?;
            write!(out, ".{}", l)
        }
        Term::Empty(t) => {
            write!(out, "empty(")?;
            write_term(out, t)?;
            write!(out, ")")
        }
        Term::Singleton(t) => {
            write!(out, "return ")?;
            write_term(out, t)
        }
        Term::EmptyBag(_) => write!(out, "∅"),
        Term::Union(l, r) => {
            write!(out, "(")?;
            write_term(out, l)?;
            write!(out, " ⊎ ")?;
            write_term(out, r)?;
            write!(out, ")")
        }
        Term::For(x, src, body) => {
            write!(out, "for ({} ← ", x)?;
            write_term(out, src)?;
            write!(out, ") ")?;
            write_term(out, body)
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", pretty(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn comprehension_pretty_prints_in_paper_syntax() {
        let q = for_where(
            "e",
            table("employees"),
            gt(project(var("e"), "salary"), int(1000)),
            singleton(project(var("e"), "name")),
        );
        let s = pretty(&q);
        assert!(s.contains("for (e ← table employees)"));
        assert!(s.contains("where"));
        assert!(s.contains("return e.name"));
    }

    #[test]
    fn union_and_empty() {
        assert_eq!(
            pretty(&union(empty_bag(), singleton(int(1)))),
            "(∅ ⊎ return 1)"
        );
    }

    #[test]
    fn lambda_and_application() {
        let t = app(lam("x", add(var("x"), int(1))), int(2));
        assert_eq!(pretty(&t), "λx. (x + 1)(2)");
    }
}
