//! Differential tests of the columnar result-assembly path (PR 5): the
//! index-keyed columnar decode + stitch must agree with the row-at-a-time
//! oracle (`stitch_rows` over per-row `FlatValue` trees) and with the nested
//! reference semantics N⟦−⟧ — on every benchmark query, under every indexing
//! scheme, through every backend, and on the edge shapes that stress the
//! grouping (empty bags, deep nesting, flattened-name collisions, duplicate
//! rows).

use query_shredding::prelude::*;
use query_shredding::shredding::pipeline;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 4,
        employees_per_department: 6,
        contacts_per_department: 3,
        seed: 11,
        ..OrgConfig::default()
    })
}

fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

/// The tentpole agreement: on every benchmark query, the columnar path
/// (`pipeline::execute`), the row path (`pipeline::execute_rows`), and the
/// text round-trip (also row-decoded) produce *identical* nested values —
/// not merely multiset-equal ones — and all agree with N⟦−⟧. Identical
/// equality holds because the columnar grouping sorts stably, preserving
/// the engine's output order within each index group exactly as the row
/// path does.
#[test]
fn columnar_and_row_result_assembly_are_identical_on_every_benchmark_query() {
    let db = small_db();
    let schema = organisation_schema();
    let engine = pipeline::engine_from_database(&db).unwrap();
    for (name, q) in all_benchmark_queries() {
        let compiled = pipeline::compile(&q, &schema).unwrap();
        let columnar = pipeline::execute(&compiled, &engine).unwrap();
        let rows = pipeline::execute_rows(&compiled, &engine).unwrap();
        assert_eq!(
            columnar, rows,
            "{}: columnar and row-path stitching must produce identical values",
            name
        );
        let via_text = pipeline::execute_via_sql_text(&compiled, &engine).unwrap();
        assert_eq!(
            columnar, via_text,
            "{}: columnar and text-shipped row-path stitching must agree",
            name
        );
        let reference = nrc::eval(&q, &db).unwrap();
        assert!(
            columnar.multiset_eq(&reference),
            "{}: columnar result assembly disagrees with N⟦−⟧",
            name
        );
    }
}

/// The columnar SQL path and the in-memory shredded semantics (which stitch
/// with the row oracle under canonical / flat / natural indexes) agree with
/// the nested-oracle backend under every indexing scheme.
#[test]
fn every_index_scheme_agrees_with_the_nested_oracle() {
    let db = small_db();
    for scheme in IndexScheme::ALL {
        let oracle = Shredder::builder()
            .database(db.clone())
            .backend(Box::new(NestedOracleBackend))
            .index_scheme(scheme)
            .build()
            .unwrap();
        let sql = Shredder::builder()
            .database(db.clone())
            .index_scheme(scheme)
            .build()
            .unwrap();
        let memory = Shredder::builder()
            .database(db.clone())
            .backend(Box::new(ShreddedMemoryBackend))
            .index_scheme(scheme)
            .build()
            .unwrap();
        for (name, q) in all_benchmark_queries() {
            let reference = oracle.run(&q).unwrap();
            let via_sql = sql.run(&q).unwrap();
            assert!(
                via_sql.multiset_eq(&reference),
                "{} under {} indexes: columnar SQL path disagrees",
                name,
                scheme
            );
            let via_memory = memory.run(&q).unwrap();
            assert!(
                via_memory.multiset_eq(&reference),
                "{} under {} indexes: shredded-memory (row-stitched) path disagrees",
                name,
                scheme
            );
        }
    }
}

/// All six backends agree with the reference semantics on the queries each
/// supports: the three built-ins and loop-lifting on the full nested suite,
/// flat-default on the flat suite, Van den Bussche on the Appendix A shape.
#[test]
fn all_six_backends_agree_on_their_supported_queries() {
    let db = small_db();
    let reference_session = Shredder::over(db.clone()).unwrap();

    // Backends that handle arbitrary nested queries.
    let nested_backends: Vec<(&str, Box<dyn SqlBackend>)> = vec![
        ("sqlengine", Box::new(SqlEngineBackend)),
        ("shredded-memory", Box::new(ShreddedMemoryBackend)),
        ("oracle", Box::new(NestedOracleBackend)),
        ("looplift", Box::new(LoopLiftBackend)),
    ];
    for (label, backend) in nested_backends {
        let session = Shredder::builder()
            .database(db.clone())
            .backend(backend)
            .build()
            .unwrap();
        for (name, q) in all_benchmark_queries() {
            let reference = reference_session.oracle(&q).unwrap();
            let value = session.run(&q).unwrap();
            assert!(
                value.multiset_eq(&reference),
                "{} via {} disagrees with the oracle",
                name,
                label
            );
        }
    }

    // Links' stock flat evaluation: flat queries only.
    let flat = Shredder::builder()
        .database(db.clone())
        .backend(Box::new(FlatDefaultBackend))
        .build()
        .unwrap();
    for (name, q) in datagen::queries::flat_queries() {
        let reference = reference_session.oracle(&q).unwrap();
        let value = flat.run(&q).unwrap();
        assert!(value.multiset_eq(&reference), "{} via flat-default", name);
    }

    // Van den Bussche's simulation: the Appendix A shape.
    let vdb_schema = Schema::new()
        .with_table(TableSchema::new("r", vec![("a", nrc::BaseType::Int)]).with_key(vec!["a"]))
        .with_table(
            TableSchema::new(
                "s",
                vec![("a", nrc::BaseType::Int), ("b", nrc::BaseType::Int)],
            )
            .with_key(vec!["a", "b"]),
        );
    let mut vdb_db = Database::new(vdb_schema);
    for a in [1i64, 2, 3] {
        vdb_db.insert_row("r", vec![("a", Value::Int(a))]).unwrap();
    }
    for (a, b) in [(1i64, 10i64), (1, 11), (2, 20)] {
        vdb_db
            .insert_row("s", vec![("a", Value::Int(a)), ("b", Value::Int(b))])
            .unwrap();
    }
    let vdb_query = for_in(
        "x",
        table("r"),
        singleton(record(vec![
            ("A", project(var("x"), "a")),
            (
                "B",
                for_where(
                    "y",
                    table("s"),
                    eq(project(var("y"), "a"), project(var("x"), "a")),
                    singleton(project(var("y"), "b")),
                ),
            ),
        ])),
    );
    let vdb = Shredder::builder()
        .database(vdb_db.clone())
        .backend(Box::new(VandenBusscheBackend))
        .build()
        .unwrap();
    let reference = vdb.oracle(&vdb_query).unwrap();
    let value = vdb.run(&vdb_query).unwrap();
    assert!(value.multiset_eq(&reference), "vdb backend disagrees");
}

// ---------------------------------------------------------------------------
// Edge shapes
// ---------------------------------------------------------------------------

fn edge_schema() -> Schema {
    Schema::new()
        .with_table(
            TableSchema::new(
                "departments",
                vec![("id", nrc::BaseType::Int), ("name", nrc::BaseType::String)],
            )
            .with_key(vec!["id"]),
        )
        .with_table(
            TableSchema::new(
                "employees",
                vec![
                    ("id", nrc::BaseType::Int),
                    ("dept", nrc::BaseType::String),
                    ("name", nrc::BaseType::String),
                ],
            )
            .with_key(vec!["id"]),
        )
        .with_table(
            TableSchema::new(
                "tasks",
                vec![
                    ("id", nrc::BaseType::Int),
                    ("employee", nrc::BaseType::String),
                    ("task", nrc::BaseType::String),
                ],
            )
            .with_key(vec!["id"]),
        )
}

fn edge_db() -> Database {
    let mut db = Database::new(edge_schema());
    for (id, name) in [(1, "Product"), (2, "Quality"), (3, "Sales")] {
        db.insert_row(
            "departments",
            vec![("id", Value::Int(id)), ("name", Value::string(name))],
        )
        .unwrap();
    }
    // Quality deliberately has no employees; Bert has no tasks.
    for (id, dept, name) in [
        (1, "Product", "Alex"),
        (2, "Product", "Bert"),
        (3, "Sales", "Cora"),
    ] {
        db.insert_row(
            "employees",
            vec![
                ("id", Value::Int(id)),
                ("dept", Value::string(dept)),
                ("name", Value::string(name)),
            ],
        )
        .unwrap();
    }
    for (id, emp, task) in [
        (1, "Alex", "build"),
        (2, "Cora", "call"),
        (3, "Cora", "sell"),
    ] {
        db.insert_row(
            "tasks",
            vec![
                ("id", Value::Int(id)),
                ("employee", Value::string(emp)),
                ("task", Value::string(task)),
            ],
        )
        .unwrap();
    }
    db
}

/// Assert the columnar path, the row path and N⟦−⟧ agree on one query over
/// the edge database.
fn assert_edge_query_agrees(q: &nrc::Term) {
    let db = edge_db();
    let engine = pipeline::engine_from_database(&db).unwrap();
    let compiled = pipeline::compile(q, &edge_schema()).unwrap();
    let columnar = pipeline::execute(&compiled, &engine).unwrap();
    let rows = pipeline::execute_rows(&compiled, &engine).unwrap();
    assert_eq!(
        columnar, rows,
        "columnar vs row-path values must be identical"
    );
    let reference = nrc::eval(q, &db).unwrap();
    assert!(
        columnar.multiset_eq(&reference),
        "columnar path disagrees with N⟦−⟧:\n  expected {}\n  got {}",
        reference,
        columnar
    );
}

/// Outer indexes with no rows in the nested stage produce empty bags, not
/// missing fields — at both nesting levels.
#[test]
fn empty_bags_survive_the_columnar_path() {
    let q = for_in(
        "d",
        table("departments"),
        singleton(record(vec![
            ("dept", project(var("d"), "name")),
            (
                "emps",
                for_where(
                    "e",
                    table("employees"),
                    eq(project(var("e"), "dept"), project(var("d"), "name")),
                    singleton(record(vec![
                        ("name", project(var("e"), "name")),
                        (
                            "tasks",
                            for_where(
                                "t",
                                table("tasks"),
                                eq(project(var("t"), "employee"), project(var("e"), "name")),
                                singleton(project(var("t"), "task")),
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    );
    assert_edge_query_agrees(&q);

    // And pin the concrete shape: Quality has an empty employee bag, Bert an
    // empty task bag.
    let db = edge_db();
    let engine = pipeline::engine_from_database(&db).unwrap();
    let compiled = pipeline::compile(&q, &edge_schema()).unwrap();
    let v = pipeline::execute(&compiled, &engine).unwrap();
    let quality = v
        .as_bag()
        .unwrap()
        .iter()
        .find(|r| r.field("dept") == Some(&Value::string("Quality")))
        .expect("Quality present");
    assert_eq!(quality.field("emps"), Some(&Value::Bag(vec![])));
    let product = v
        .as_bag()
        .unwrap()
        .iter()
        .find(|r| r.field("dept") == Some(&Value::string("Product")))
        .expect("Product present");
    let bert = product
        .field("emps")
        .and_then(Value::as_bag)
        .unwrap()
        .iter()
        .find(|e| e.field("name") == Some(&Value::string("Bert")))
        .expect("Bert present");
    assert_eq!(bert.field("tasks"), Some(&Value::Bag(vec![])));
}

/// A four-deep nesting (departments → employees → tasks → a per-task bag):
/// one columnar stage per bag constructor, stitched through three levels of
/// index-keyed recursion.
#[test]
fn deeply_nested_shapes_stitch_correctly() {
    let q = for_in(
        "d",
        table("departments"),
        singleton(record(vec![
            ("dept", project(var("d"), "name")),
            (
                "emps",
                for_where(
                    "e",
                    table("employees"),
                    eq(project(var("e"), "dept"), project(var("d"), "name")),
                    singleton(record(vec![
                        ("name", project(var("e"), "name")),
                        (
                            "tasks",
                            for_where(
                                "t",
                                table("tasks"),
                                eq(project(var("t"), "employee"), project(var("e"), "name")),
                                singleton(record(vec![
                                    ("task", project(var("t"), "task")),
                                    (
                                        "watchers",
                                        for_where(
                                            "w",
                                            table("employees"),
                                            eq(
                                                project(var("w"), "dept"),
                                                project(var("e"), "dept"),
                                            ),
                                            singleton(project(var("w"), "name")),
                                        ),
                                    ),
                                ])),
                            ),
                        ),
                    ])),
                ),
            ),
        ])),
    );
    assert_edge_query_agrees(&q);
}

/// Record labels whose flattened names collide (`a` · `b` flattens to `a_b`,
/// which also appears as a literal label): the layout disambiguates the SQL
/// column names positionally, and both result paths must still decode the
/// right cells into the right fields.
#[test]
fn duplicate_flattened_labels_decode_correctly() {
    let q = for_in(
        "e",
        table("employees"),
        singleton(record(vec![
            ("a", record(vec![("b", project(var("e"), "name"))])),
            ("a_b", project(var("e"), "dept")),
        ])),
    );
    assert_edge_query_agrees(&q);
}

/// Duplicate rows (a union doubling every employee) keep their
/// multiplicities through the index-keyed grouping.
#[test]
fn duplicate_rows_keep_their_multiplicity() {
    let q = for_in(
        "d",
        table("departments"),
        singleton(record(vec![
            ("dept", project(var("d"), "name")),
            (
                "people",
                union(
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                    for_where(
                        "e",
                        table("employees"),
                        eq(project(var("e"), "dept"), project(var("d"), "name")),
                        singleton(project(var("e"), "name")),
                    ),
                ),
            ),
        ])),
    );
    assert_edge_query_agrees(&q);
}

/// Prepared re-execution stays on the zero-planning hot path: executing the
/// same compiled query many times builds no further engine plans and keeps
/// producing identical values — the per-execution work is exactly plan
/// evaluation plus columnar decode + stitch.
#[test]
fn prepared_re_execution_does_zero_planning_and_is_deterministic() {
    let db = small_db();
    let session = Shredder::over(db).unwrap();
    let q = datagen::queries::q4();
    let prepared = session.prepare(&q).unwrap();
    let first = session.execute(&prepared).unwrap();
    let plans_before = session.engine().unwrap().plans_built();
    for _ in 0..10 {
        let again = session.execute(&prepared).unwrap();
        assert_eq!(first, again, "re-execution must be deterministic");
    }
    assert_eq!(
        session.engine().unwrap().plans_built(),
        plans_before,
        "bound re-execution must never reach the planner"
    );
}
