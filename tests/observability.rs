//! Observability tests: per-operator profiling is semantically transparent
//! (every benchmark query returns identical results profiled and
//! unprofiled), `explain_analyze()` actuals agree with the nested reference
//! semantics' cardinalities, the metrics registry counts exactly under
//! concurrent execution, and `MetricsSnapshot` round-trips through its JSON
//! encoding.

use query_shredding::prelude::*;
use query_shredding::shredding::obs::{
    Histogram, MetricsRegistry, MetricsSnapshot, ObsSink, OperatorProfile, QueryObs, QueryProfile,
    RingSink, Stage,
};
use std::sync::Arc;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 3,
        employees_per_department: 5,
        contacts_per_department: 2,
        seed: 23,
        ..OrgConfig::default()
    })
}

/// Every benchmark query the paper evaluates: QF1–QF6 and Q1–Q6.
fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

// ---------------------------------------------------------------------------
// Static Send + Sync assertions
// ---------------------------------------------------------------------------

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn the_observability_layer_is_send_and_sync() {
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<Arc<MetricsRegistry>>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<MetricsSnapshot>();
    assert_send_sync::<QueryObs>();
    assert_send_sync::<QueryProfile>();
    assert_send_sync::<OperatorProfile>();
    assert_send_sync::<RingSink>();
    assert_send_sync::<Arc<dyn ObsSink>>();
}

// ---------------------------------------------------------------------------
// Profiling is semantically transparent
// ---------------------------------------------------------------------------

#[test]
fn profiled_and_unprofiled_execution_agree_on_every_benchmark_query() {
    let session = Shredder::builder().database(small_db()).build().unwrap();
    let no_params = Params::new();
    for (name, q) in all_benchmark_queries() {
        let reference = session.oracle(&q).unwrap();
        let prepared = session.prepare(&q).unwrap();
        let unprofiled = session
            .execute_profiled(&prepared, &no_params, false)
            .unwrap();
        let profiled = session
            .execute_profiled(&prepared, &no_params, true)
            .unwrap();
        assert!(
            unprofiled.multiset_eq(&reference),
            "{}: unprofiled result diverges from the oracle",
            name
        );
        assert!(
            profiled.multiset_eq(&reference),
            "{}: profiled result diverges from the oracle",
            name
        );
    }
}

// ---------------------------------------------------------------------------
// explain_analyze() actuals vs. oracle cardinalities
// ---------------------------------------------------------------------------

#[test]
fn explain_analyze_row_counts_match_oracle_cardinalities() {
    let session = Shredder::builder()
        .database(small_db())
        .profile(true)
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    let prepared = session.prepare(&q).unwrap();
    session.execute(&prepared).unwrap();

    // Oracle cardinalities: the outer bag is one row per department, the
    // inner stage one row per (department, employee) pair.
    let oracle = session.oracle(&q).unwrap();
    let outer = oracle.as_bag().unwrap();
    let inner_total: usize = outer
        .iter()
        .map(|row| {
            let fields = row.as_record().unwrap();
            let (_, employees) = fields.iter().find(|(l, _)| l == "employees").unwrap();
            employees.as_bag().unwrap().len()
        })
        .sum();
    assert_eq!(outer.len(), 3);
    assert!(inner_total > outer.len());

    // The root operator of each stage (pre-order node 0) must report the
    // stage's result cardinality as rows_out.
    let profiles = session.recent_profiles();
    let profile = profiles.last().expect("the default ring sink records");
    assert!(profile.profiled);
    let root_rows = |stage: usize| {
        profile
            .operators
            .iter()
            .find(|op| op.stage == stage && op.node == 0)
            .unwrap_or_else(|| panic!("stage {} has a root operator", stage))
            .rows_out
    };
    assert_eq!(root_rows(0) as usize, outer.len());
    assert_eq!(root_rows(1) as usize, inner_total);

    // And the rendered plan carries the same actuals on every node.
    let analyzed = prepared.explain_analyze().unwrap();
    assert!(
        analyzed.contains(&format!("rows_out={}", outer.len())),
        "{analyzed}"
    );
    assert!(
        analyzed.contains(&format!("rows_out={}", inner_total)),
        "{analyzed}"
    );
    let node_count: usize = (0..prepared.query_count())
        .map(|s| profile.operators.iter().filter(|op| op.stage == s).count())
        .sum();
    assert_eq!(
        analyzed.matches("rows_out=").count(),
        node_count,
        "every plan node renders actuals:\n{analyzed}"
    );
}

#[test]
fn explain_analyze_requires_a_profiled_execution() {
    let session = Shredder::builder().database(small_db()).build().unwrap();
    let prepared = session.prepare(&datagen::queries::q4()).unwrap();
    // Never executed with profiling: there are no actuals to render.
    let err = prepared.explain_analyze().unwrap_err();
    assert!(
        err.to_string().contains("profile"),
        "the error should point at enabling profiling, got: {}",
        err
    );
    // An unprofiled execution does not change that.
    session.execute(&prepared).unwrap();
    assert!(prepared.explain_analyze().is_err());
    // A per-call profiled execution does.
    session
        .execute_profiled(&prepared, &Params::new(), true)
        .unwrap();
    assert!(prepared.explain_analyze().unwrap().contains("rows_out="));
}

// ---------------------------------------------------------------------------
// Registry exactness under concurrency
// ---------------------------------------------------------------------------

#[test]
fn the_registry_counts_exactly_under_concurrent_execution() {
    const THREADS: usize = 8;
    const EXECS: usize = 50;
    let session = Arc::new(Shredder::builder().database(small_db()).build().unwrap());
    let q = datagen::queries::q4();
    let prepared = session.prepare(&q).unwrap();
    let stages = prepared.query_count();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let session = Arc::clone(&session);
            let prepared = prepared.clone();
            std::thread::spawn(move || {
                for _ in 0..EXECS {
                    session.execute(&prepared).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (THREADS * EXECS) as u64;
    let snapshot = session.metrics_snapshot();
    assert_eq!(snapshot.counter("queries.executed"), Some(total));
    assert_eq!(snapshot.counter("queries.failed").unwrap_or(0), 0);
    let query_total = snapshot.histogram("query.total").unwrap();
    assert_eq!(query_total.count, total);
    let execute = snapshot.histogram("stage.execute").unwrap();
    assert_eq!(execute.count, total * stages as u64);
    // The histogram's quantile read-out is ordered and bounded by the exact
    // min/max it tracks.
    assert!(query_total.min <= query_total.p50);
    assert!(query_total.p50 <= query_total.p95);
    assert!(query_total.p95 <= query_total.p99);
    assert!(query_total.p99 <= query_total.max || query_total.p99 <= query_total.max * 104 / 100);
}

// ---------------------------------------------------------------------------
// Snapshot JSON round-trip and explain() cache stats
// ---------------------------------------------------------------------------

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let session = Shredder::builder().database(small_db()).build().unwrap();
    for (_, q) in all_benchmark_queries() {
        let prepared = session.prepare(&q).unwrap();
        session
            .execute_profiled(&prepared, &Params::new(), true)
            .unwrap();
    }
    let snapshot = session.metrics_snapshot();
    assert!(snapshot.counter("queries.prepared").unwrap() >= 12);
    assert!(snapshot.gauge("cache.entries").is_some());
    assert!(snapshot.gauge("engine.plans_built").is_some());
    assert!(snapshot
        .histograms
        .iter()
        .any(|(name, _)| name.starts_with("operator.")));
    let json = snapshot.to_json();
    let back = MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(snapshot, back);
}

#[test]
fn explain_renders_cache_stats_and_engine_plan_count() {
    let session = Shredder::builder().database(small_db()).build().unwrap();
    let q = datagen::queries::q4();
    session.execute(&session.prepare(&q).unwrap()).unwrap();
    // Second prepare hits the plan cache; its explain must say so.
    let prepared = session.prepare(&q).unwrap();
    assert!(prepared.from_cache());
    let rendered = prepared.explain().to_string();
    assert!(rendered.contains("cache: hits=1"), "{rendered}");
    assert!(rendered.contains("engine plans built:"), "{rendered}");
}

// ---------------------------------------------------------------------------
// Morsel-parallel execution metrics
// ---------------------------------------------------------------------------

#[test]
fn parallel_execution_records_morsel_metrics_in_the_snapshot() {
    // Morsel size 1 forces every operator down its parallel arm even on the
    // tiny test database, so a single query dispatches many morsels.
    // `min_parallel_rows(0)` disables the adaptive gate that would otherwise
    // keep a database this small on the sequential path.
    let session = Shredder::builder()
        .database(small_db())
        .workers(4)
        .morsel_rows(1)
        .min_parallel_rows(0)
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    session.execute(&session.prepare(&q).unwrap()).unwrap();

    let snapshot = session.metrics_snapshot();
    let dispatched = snapshot
        .counter("morsels.dispatched")
        .expect("parallel execution registers the morsel counter");
    assert!(dispatched > 0, "no morsels dispatched: {dispatched}");
    let active = snapshot
        .gauge("workers.active")
        .expect("parallel execution registers the worker high-water mark");
    assert!(
        (1..=4).contains(&active),
        "workers.active high-water mark out of range: {active}"
    );
    let morsel = snapshot
        .histogram("morsel")
        .expect("parallel execution records per-morsel latencies");
    assert_eq!(morsel.count, dispatched, "one latency sample per morsel");
    assert!(morsel.min <= morsel.p50 && morsel.p50 <= morsel.max);
}

#[test]
fn the_adaptive_gate_keeps_small_inputs_sequential() {
    // Same parallel session as above but with the default
    // `min_parallel_rows` threshold: the tiny database's estimated row
    // counts sit far below it, so every stage falls back to the sequential
    // executor and no morsel metrics appear.
    let session = Shredder::builder()
        .database(small_db())
        .workers(4)
        .morsel_rows(1)
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    session.execute(&session.prepare(&q).unwrap()).unwrap();
    let snapshot = session.metrics_snapshot();
    assert_eq!(snapshot.counter("morsels.dispatched"), None);
    assert_eq!(snapshot.gauge("workers.active"), None);
}

#[test]
fn a_single_worker_session_records_no_morsel_metrics() {
    let session = Shredder::builder()
        .database(small_db())
        .workers(1)
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    session.execute(&session.prepare(&q).unwrap()).unwrap();
    let snapshot = session.metrics_snapshot();
    assert_eq!(snapshot.counter("morsels.dispatched"), None);
    assert_eq!(snapshot.gauge("workers.active"), None);
    assert!(snapshot.histogram("morsel").is_none());
}

// ---------------------------------------------------------------------------
// Sinks and stage tracing
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CountingSink {
    seen: std::sync::Mutex<Vec<QueryProfile>>,
}

impl ObsSink for CountingSink {
    fn record(&self, profile: QueryProfile) {
        self.seen.lock().unwrap().push(profile);
    }
}

#[test]
fn a_custom_sink_receives_every_profile_with_all_pipeline_stages() {
    let sink = Arc::new(CountingSink::default());
    let session = Shredder::builder()
        .database(small_db())
        .obs_sink(sink.clone())
        .without_plan_cache()
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    let prepared = session.prepare(&q).unwrap();
    session.execute(&prepared).unwrap();
    session.execute(&prepared).unwrap();
    let seen = sink.seen.lock().unwrap();
    assert_eq!(seen.len(), 2);
    // Stage tracing is always on: prepare-side and execute-side spans are
    // both present even without per-operator profiling.
    for stage in [
        Stage::Typecheck,
        Stage::Normalise,
        Stage::Shred,
        Stage::Sqlgen,
        Stage::Plan,
        Stage::Execute,
        Stage::Decode,
        Stage::Stitch,
    ] {
        assert!(
            seen[0].spans.iter().any(|s| s.stage == stage),
            "missing span for stage {}",
            stage
        );
    }
    assert!(!seen[0].profiled);
    assert!(seen[0].operators.is_empty());
    assert!(seen[0].total_nanos >= seen[0].stage_nanos(Stage::Execute));
    // Installing a custom sink replaces the in-memory ring.
    assert!(session.recent_profiles().is_empty());
}

// ---------------------------------------------------------------------------
// Write-path observability: apply_batch counters and maintenance histogram
// ---------------------------------------------------------------------------

#[test]
fn committed_writes_bump_the_write_counters_and_maintain_histogram() {
    let db = small_db();
    let session = Shredder::over(db.clone()).unwrap();
    let queries = datagen::queries::nested_queries();
    let p1 = session.prepare(&queries[0].1).unwrap();
    let p2 = session.prepare(&queries[3].1).unwrap();
    let _s1 = session.subscribe(&p1).unwrap();
    let _s2 = session.subscribe(&p2).unwrap();

    let mut stream = MutationStream::over(
        &db,
        MutationConfig {
            ops_per_batch: 2,
            seed: 31,
            ..MutationConfig::default()
        },
    );
    let mut delta_rows = 0u64;
    const BATCHES: u64 = 5;
    for _ in 0..BATCHES {
        let delta = session.apply_batch(&stream.next_batch()).unwrap();
        delta_rows += delta.row_count() as u64;
    }

    let snapshot = session.metrics_snapshot();
    assert_eq!(snapshot.counter("writes.applied"), Some(BATCHES));
    assert_eq!(snapshot.counter("delta.rows"), Some(delta_rows));
    // One maintenance sample per live subscription per committed batch.
    let maintain = snapshot.histogram("stage.maintain").unwrap();
    assert_eq!(maintain.count, BATCHES * 2);
    assert!(maintain.min <= maintain.p50 && maintain.p50 <= maintain.max);
}

#[test]
fn a_dropped_subscription_stops_contributing_maintenance_samples() {
    let db = small_db();
    let session = Shredder::over(db.clone()).unwrap();
    let (_, q) = datagen::queries::nested_queries().remove(0);
    let prepared = session.prepare(&q).unwrap();
    let sub = session.subscribe(&prepared).unwrap();

    let mut stream = MutationStream::over(
        &db,
        MutationConfig {
            ops_per_batch: 2,
            seed: 37,
            ..MutationConfig::default()
        },
    );
    session.apply_batch(&stream.next_batch()).unwrap();
    drop(sub);
    session.apply_batch(&stream.next_batch()).unwrap();

    let snapshot = session.metrics_snapshot();
    assert_eq!(snapshot.counter("writes.applied"), Some(2));
    let maintain = snapshot.histogram("stage.maintain").unwrap();
    assert_eq!(
        maintain.count, 1,
        "only the batch committed while the subscription was alive maintains it"
    );
}
