//! Concurrency tests: the whole pipeline is `Send + Sync`, one `Shredder`
//! session is shared across worker threads, and concurrent bound executions
//! through the shared plan cache produce exactly the single-threaded oracle
//! results — under every backend and all three indexing schemes — with zero
//! engine-side re-planning.

use query_shredding::prelude::*;
use query_shredding::{shredding, sqlengine};
use std::sync::Arc;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 3,
        employees_per_department: 5,
        contacts_per_department: 2,
        seed: 23,
        ..OrgConfig::default()
    })
}

/// Every benchmark query the paper evaluates: QF1–QF6 and Q1–Q6.
fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

// ---------------------------------------------------------------------------
// Static Send + Sync assertions
// ---------------------------------------------------------------------------

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn the_whole_pipeline_is_send_and_sync() {
    // The session and everything a worker thread holds.
    assert_send_sync::<Shredder>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<Params>();
    assert_send_sync::<ParamSpec>();
    assert_send_sync::<shredding::Bindings>();
    assert_send_sync::<shredding::CacheStats>();
    assert_send_sync::<shredding::BackendPlan>();
    assert_send_sync::<shredding::CompiledQuery>();
    // The engine layer: shared storage, immutable plans, columnar batches.
    assert_send_sync::<sqlengine::Engine>();
    assert_send_sync::<sqlengine::Storage>();
    assert_send_sync::<sqlengine::SqlValue>();
    assert_send_sync::<sqlengine::PhysicalPlan>();
    assert_send_sync::<sqlengine::ResultSet>();
    assert_send_sync::<Arc<sqlengine::Engine>>();
    // Every backend, as trait objects and as the concrete unit structs.
    assert_send_sync::<Box<dyn SqlBackend>>();
    assert_send_sync::<SqlEngineBackend>();
    assert_send_sync::<ShreddedMemoryBackend>();
    assert_send_sync::<NestedOracleBackend>();
    assert_send_sync::<LoopLiftBackend>();
    assert_send_sync::<FlatDefaultBackend>();
    assert_send_sync::<VandenBusscheBackend>();
}

// ---------------------------------------------------------------------------
// Shared-session stress tests
// ---------------------------------------------------------------------------

/// 8 threads hammer one shared `Shredder` with bound executions of every
/// benchmark query; every result must equal the single-threaded oracle
/// output, the engine must never re-plan, and the shared plan cache must
/// serve (almost) every prepare.
#[test]
fn eight_threads_share_one_session_and_agree_with_the_oracle() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 3;

    let session = Shredder::over(small_db()).unwrap();
    let queries = all_benchmark_queries();

    // Single-threaded phase: prepare every query once (the only cache
    // misses) and record the oracle answer.
    let prepared: Vec<(&'static str, nrc::Term, PreparedQuery, Value)> = queries
        .into_iter()
        .map(|(name, q)| {
            let p = session.prepare(&q).unwrap();
            let expected = session.oracle(&q).unwrap();
            (name, q, p, expected)
        })
        .collect();
    let plans_before = session.engine().unwrap().plans_built();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let session = session.clone();
            let prepared = &prepared;
            scope.spawn(move || {
                for _ in 0..ROUNDS {
                    for (name, q, p, expected) in prepared {
                        // Bound execution of the shared prepared handle
                        // (auto-parameterized queries carry their literals
                        // as default bindings).
                        let bound = session
                            .execute_bound(p, p.default_bindings())
                            .unwrap_or_else(|e| panic!("{} bound execution: {}", name, e));
                        assert!(
                            bound.multiset_eq(expected),
                            "{}: concurrent bound execution diverged from the \
                             single-threaded oracle",
                            name
                        );
                        // The ad-hoc path: prepare-from-cache + execute.
                        let ran = session
                            .run(q)
                            .unwrap_or_else(|e| panic!("{} run: {}", name, e));
                        assert!(
                            ran.multiset_eq(expected),
                            "{}: concurrent run diverged",
                            name
                        );
                    }
                }
            });
        }
    });

    // Zero re-planning: the engine's planner was never consulted (stage
    // plans are compiled at prepare time against the schema catalog).
    assert_eq!(
        session.engine().unwrap().plans_built(),
        plans_before,
        "concurrent execution of prepared queries must never re-plan"
    );
    // The shared cache served every concurrent prepare: one miss per query
    // from the warm-up phase, THREADS × ROUNDS hits per query from the
    // threads.
    let stats = session.cache_stats();
    assert_eq!(stats.misses as usize, prepared.len());
    assert_eq!(stats.hits as usize, THREADS * ROUNDS * prepared.len());
    let hit_rate = stats.hits as f64 / (stats.hits + stats.misses) as f64;
    assert!(hit_rate > 0.9, "hit rate {} under concurrency", hit_rate);
}

/// The shredded-memory backend under each of the three indexing schemes,
/// shared across 4 threads with explicitly bound parameters.
#[test]
fn all_three_index_schemes_survive_concurrent_bound_execution() {
    const THREADS: usize = 4;

    let db = small_db();
    let query = for_where(
        "e",
        table("employees"),
        gt(project(var("e"), "salary"), int_param("cutoff")),
        singleton(record(vec![
            ("name", project(var("e"), "name")),
            ("tasks", datagen::queries::tasks_of_emp(var("e"))),
        ])),
    );
    let cutoffs: Vec<i64> = vec![0, 10_000, 25_000, 60_000];

    for scheme in IndexScheme::ALL {
        let session = Shredder::builder()
            .database(db.clone())
            .backend(Box::new(ShreddedMemoryBackend))
            .index_scheme(scheme)
            .build()
            .unwrap();
        let prepared = session.prepare(&query).unwrap();
        // Single-threaded oracle answers, one per binding.
        let expected: Vec<Value> = cutoffs
            .iter()
            .map(|&c| {
                session
                    .oracle_bound(&query, &Params::new().bind("cutoff", c))
                    .unwrap()
            })
            .collect();

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let session = session.clone();
                let prepared = prepared.clone();
                let cutoffs = &cutoffs;
                let expected = &expected;
                scope.spawn(move || {
                    // Each thread starts at a different binding so distinct
                    // bindings are in flight simultaneously.
                    for i in 0..cutoffs.len() {
                        let k = (t + i) % cutoffs.len();
                        let value = session
                            .execute_bound(&prepared, &Params::new().bind("cutoff", cutoffs[k]))
                            .unwrap();
                        assert!(
                            value.multiset_eq(&expected[k]),
                            "scheme {} diverged under concurrency at cutoff {}",
                            scheme,
                            cutoffs[k]
                        );
                    }
                });
            }
        });
    }
}

/// Concurrent prepares of distinct ad-hoc queries keep the shared LRU cache
/// consistent: every distinct normal form ends up cached exactly once and
/// later prepares from any thread are hits.
#[test]
fn concurrent_prepares_fill_the_shared_cache_consistently() {
    let session = Shredder::over(small_db()).unwrap();
    let queries = all_benchmark_queries();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let session = session.clone();
            let queries = &queries;
            scope.spawn(move || {
                for (_, q) in queries {
                    session.prepare(q).unwrap();
                }
            });
        }
    });

    let stats = session.cache_stats();
    assert_eq!(
        stats.entries,
        queries.len(),
        "one cache entry per distinct normal form"
    );
    // Racing threads may each miss the same cold key before the first
    // insert lands, so the miss count is ≥ the query count but bounded by
    // the fan-out; everything else must be a hit.
    assert!(
        stats.misses as usize >= queries.len(),
        "got {} misses",
        stats.misses
    );
    assert_eq!((stats.hits + stats.misses) as usize, 4 * queries.len());
    // Afterwards the cache is warm for every thread.
    for (_, q) in &queries {
        assert!(session.prepare(q).unwrap().from_cache());
    }
}

/// A prepared query handle crosses threads and still refuses to execute on a
/// foreign session (the guard rails survive the refactor).
#[test]
fn prepared_handles_cross_threads_but_not_sessions() {
    let sql = Shredder::over(small_db()).unwrap();
    let oracle = Shredder::builder()
        .database(small_db())
        .backend(Box::new(NestedOracleBackend))
        .build()
        .unwrap();
    let prepared = sql.prepare(&datagen::queries::q4()).unwrap();
    let handle = std::thread::spawn(move || prepared);
    let prepared = handle.join().unwrap();
    assert!(sql.execute(&prepared).is_ok());
    assert!(oracle.execute(&prepared).is_err());
}

/// Cloning a session is an `Arc` bump: clones observe each other's cache
/// traffic and share one lazily loaded engine.
#[test]
fn clones_share_one_plan_cache_and_one_engine() {
    let session = Shredder::over(small_db()).unwrap();
    let clone = session.clone();
    let q = datagen::queries::q4();

    session.run(&q).unwrap();
    assert!(
        clone.prepare(&q).unwrap().from_cache(),
        "a clone sees plans cached through the original"
    );
    let a = session.shared_engine().unwrap();
    let b = clone.shared_engine().unwrap();
    assert!(
        Arc::ptr_eq(&a, &b),
        "clones share one loaded engine instance"
    );
}
