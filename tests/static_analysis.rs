//! Integration tests for the static verification layer: golden lint output
//! over the benchmark corpus, seeded mutation properties over compiled
//! physical plans, and prepare-time rejection of corrupted backend plans.

use datagen::rng::Rng;
use nrc::builder::*;
use nrc::schema::Schema;
use nrc::term::Term;
use shredding::analysis::{codes, lint, plan_check, Severity};
use shredding::pipeline::{self, CompiledQuery};
use shredding::session::{
    BackendPlan, Bindings, ExecContext, PlanRequest, Shredder, SqlBackend, StageExplain,
};
use shredding::ShredError;
use sqlengine::plan::{PhysicalPlan, VExpr};
use sqlengine::storage::TableDef;

fn corpus() -> Vec<(&'static str, Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

// ---------------------------------------------------------------------------
// Golden lint output over the benchmark corpus
// ---------------------------------------------------------------------------

fn lint_line(name: &str, term: &Term, declared: &[String]) -> String {
    let ds = lint::lint_term(term, declared);
    if ds.is_empty() {
        format!("{}: clean", name)
    } else {
        let codes: Vec<&str> = ds.iter().map(|d| d.code).collect();
        format!("{}: {}", name, codes.join(" "))
    }
}

/// The lint pass over QF1–QF6 / Q1–Q6 plus a handful of deliberately
/// suspicious terms, compared against a checked-in golden file. The corpus
/// must stay clean; the crafted terms pin each lint code's trigger.
#[test]
fn benchmark_corpus_lints_match_the_golden_file() {
    let mut lines = Vec::new();
    for (name, q) in corpus() {
        lines.push(lint_line(name, &q, &[]));
    }
    let crafted: Vec<(&str, Term)> = vec![
        (
            "shadowed-binder",
            for_in(
                "x",
                table("employees"),
                for_in(
                    "x",
                    table("employees"),
                    singleton(project(var("x"), "name")),
                ),
            ),
        ),
        (
            "dead-generator",
            for_in("x", table("employees"), singleton(int(1))),
        ),
        (
            "unused-let",
            app(
                lam(
                    "y",
                    for_in(
                        "x",
                        table("employees"),
                        singleton(project(var("x"), "name")),
                    ),
                ),
                int(1),
            ),
        ),
        (
            "constant-conditional",
            for_in(
                "x",
                table("employees"),
                if_then_else(
                    boolean(true),
                    singleton(project(var("x"), "name")),
                    empty_bag(),
                ),
            ),
        ),
    ];
    for (name, q) in &crafted {
        lines.push(lint_line(name, q, &[]));
    }
    lines.push(lint_line(
        "unused-param",
        &for_in(
            "x",
            table("employees"),
            singleton(project(var("x"), "name")),
        ),
        &["cutoff".to_string()],
    ));
    let actual = format!("{}\n", lines.join("\n"));
    let golden = include_str!("golden/lint_corpus.golden");
    assert_eq!(
        actual, golden,
        "lint output drifted from tests/golden/lint_corpus.golden; \
         if the change is intended, update the golden file to:\n{}",
        actual
    );
}

// ---------------------------------------------------------------------------
// Seeded mutation properties over compiled physical plans
// ---------------------------------------------------------------------------

fn visit_mut(plan: &mut PhysicalPlan, f: &mut dyn FnMut(&mut PhysicalPlan)) {
    f(plan);
    match plan {
        PhysicalPlan::UnitRow | PhysicalPlan::TableScan { .. } | PhysicalPlan::CteScan { .. } => {}
        PhysicalPlan::SubqueryScan { input, .. }
        | PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::RowNumber { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Distinct { input } => visit_mut(input, f),
        PhysicalPlan::NestedLoopJoin { left, right }
        | PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::ExceptAll { left, right } => {
            visit_mut(left, f);
            visit_mut(right, f);
        }
        PhysicalPlan::ExistsSemiJoin { input, subplan, .. } => {
            visit_mut(input, f);
            visit_mut(subplan, f);
        }
        PhysicalPlan::HashSemiJoin { input, build, .. } => {
            visit_mut(input, f);
            visit_mut(build, f);
        }
        PhysicalPlan::UnionAll(branches) => {
            for b in branches {
                visit_mut(b, f);
            }
        }
        PhysicalPlan::With {
            definition, body, ..
        } => {
            visit_mut(definition, f);
            visit_mut(body, f);
        }
    }
}

/// A plan corruption with the diagnostic code the validator must report.
#[derive(Clone, Copy, Debug)]
enum Mutation {
    /// Rename a `TableScan` to a table the catalog does not know → P011.
    RenameTable,
    /// Drop the last output column name of a `Project` → P008.
    TruncateProject,
    /// Empty one side's key list of a `HashJoin` → P003.
    BreakJoinArity,
    /// Replace a `Filter` predicate with an undeclared param slot → P005.
    UndeclaredParam,
}

impl Mutation {
    const ALL: [Mutation; 4] = [
        Mutation::RenameTable,
        Mutation::TruncateProject,
        Mutation::BreakJoinArity,
        Mutation::UndeclaredParam,
    ];

    fn expected_code(self) -> &'static str {
        match self {
            Mutation::RenameTable => codes::UNKNOWN_TABLE,
            Mutation::TruncateProject => codes::PROJECTION_ARITY,
            Mutation::BreakJoinArity => codes::JOIN_KEY_ARITY,
            Mutation::UndeclaredParam => codes::UNDECLARED_PARAM_SLOT,
        }
    }

    fn matches(self, node: &PhysicalPlan) -> bool {
        match self {
            Mutation::RenameTable => matches!(node, PhysicalPlan::TableScan { .. }),
            Mutation::TruncateProject => {
                matches!(node, PhysicalPlan::Project { columns, .. } if !columns.is_empty())
            }
            Mutation::BreakJoinArity => {
                matches!(node, PhysicalPlan::HashJoin { left_keys, .. } if !left_keys.is_empty())
            }
            Mutation::UndeclaredParam => matches!(node, PhysicalPlan::Filter { .. }),
        }
    }

    fn sites(self, plan: &PhysicalPlan) -> usize {
        let mut plan = plan.clone();
        let mut n = 0;
        visit_mut(&mut plan, &mut |node| {
            if self.matches(node) {
                n += 1;
            }
        });
        n
    }

    fn apply(self, plan: &mut PhysicalPlan, site: usize) {
        let mut remaining = site;
        let mut done = false;
        visit_mut(plan, &mut |node| {
            if done || !self.matches(node) {
                return;
            }
            if remaining > 0 {
                remaining -= 1;
                return;
            }
            done = true;
            match (self, node) {
                (Mutation::RenameTable, PhysicalPlan::TableScan { table, .. }) => {
                    *table = "no_such_table".to_string();
                }
                (Mutation::TruncateProject, PhysicalPlan::Project { columns, .. }) => {
                    columns.pop();
                }
                (Mutation::BreakJoinArity, PhysicalPlan::HashJoin { right_keys, .. }) => {
                    right_keys.clear();
                }
                (Mutation::UndeclaredParam, PhysicalPlan::Filter { predicate, .. }) => {
                    *predicate = VExpr::Param("__undeclared".to_string());
                }
                _ => unreachable!("matches() gated the node kind"),
            }
        });
        assert!(done, "apply() must find the chosen site");
    }
}

fn stage_plans(compiled: &CompiledQuery) -> Vec<PhysicalPlan> {
    compiled
        .stages
        .annotations()
        .into_iter()
        .map(|s| s.plan.clone())
        .collect()
}

/// Property: every well-formed compiled stage validates clean, and a random
/// single-node corruption is always reported with exactly the documented
/// diagnostic code. Seeded via the in-repo splitmix64 generator, so failures
/// reproduce.
#[test]
fn seeded_plan_mutations_trigger_the_documented_codes() {
    let schema: Schema = datagen::organisation_schema();
    let catalog: Vec<TableDef> = pipeline::table_defs_of_schema(&schema);
    let compiled: Vec<(&'static str, CompiledQuery)> = corpus()
        .into_iter()
        .map(|(name, q)| (name, pipeline::compile(&q, &schema).expect(name)))
        .collect();
    for (name, c) in &compiled {
        for plan in stage_plans(c) {
            let ds = plan_check::validate_plan(&plan, &catalog, &[]);
            assert!(
                !ds.iter().any(|d| d.severity == Severity::Error),
                "{} must validate clean, got: {:?}",
                name,
                ds
            );
        }
    }
    let mut rng = Rng::seed_from_u64(0x05EE_DCA7_A106);
    let mut applied = [0usize; 4];
    for _ in 0..64 {
        let (name, c) = &compiled[rng.range_usize(0, compiled.len() - 1)];
        let plans = stage_plans(c);
        let mut plan = plans[rng.range_usize(0, plans.len() - 1)].clone();
        let applicable: Vec<Mutation> = Mutation::ALL
            .into_iter()
            .filter(|m| m.sites(&plan) > 0)
            .collect();
        let mutation = applicable[rng.range_usize(0, applicable.len() - 1)];
        let site = rng.range_usize(0, mutation.sites(&plan) - 1);
        mutation.apply(&mut plan, site);
        let ds = plan_check::validate_plan(&plan, &catalog, &[]);
        let expected = mutation.expected_code();
        assert!(
            ds.iter()
                .any(|d| d.code == expected && d.severity == Severity::Error),
            "{}: {:?} at site {} must report {}, got: {:?}",
            name,
            mutation,
            site,
            expected,
            ds
        );
        applied[Mutation::ALL
            .iter()
            .position(|m| std::mem::discriminant(m) == std::mem::discriminant(&mutation))
            .unwrap()] += 1;
    }
    assert!(
        applied.iter().all(|&n| n > 0),
        "the seed must exercise every mutation kind at least once: {:?}",
        applied
    );
}

// ---------------------------------------------------------------------------
// Prepare-time rejection of corrupted backend plans
// ---------------------------------------------------------------------------

/// A backend that compiles correctly, then corrupts one physical plan —
/// standing in for a backend bug that the verifier must catch at prepare.
#[derive(Debug)]
struct CorruptingBackend;

impl SqlBackend for CorruptingBackend {
    fn name(&self) -> &'static str {
        "corrupting"
    }

    fn prepare(&self, req: &PlanRequest<'_>) -> Result<BackendPlan, ShredError> {
        let mut compiled = pipeline::compile(req.term, req.schema)?;
        let mut first = true;
        compiled.stages = compiled.stages.map(&mut |stage| {
            let mut stage = stage.clone();
            if first {
                first = false;
                Mutation::RenameTable.apply(&mut stage.plan, 0);
            }
            stage
        });
        let stages = vec![StageExplain {
            path: "ε".to_string(),
            sql: None,
            physical: None,
            columns: Vec::new(),
            rewrites: Vec::new(),
        }];
        Ok(BackendPlan::new(stages, compiled))
    }

    fn execute(
        &self,
        _plan: &BackendPlan,
        _cx: &ExecContext<'_>,
        _bindings: &Bindings,
    ) -> Result<nrc::value::Value, ShredError> {
        panic!("the corrupted plan must be rejected before execution");
    }
}

/// A deliberately corrupted backend plan is rejected at `prepare` time with
/// the documented diagnostic code when verification gates (`verify(true)`),
/// and surfaced through `check()` when it only collects (`verify(false)`).
#[test]
fn corrupted_plans_are_rejected_at_prepare_time() {
    let gated = Shredder::builder()
        .schema(datagen::organisation_schema())
        .backend(Box::new(CorruptingBackend))
        .verify(true)
        .build()
        .unwrap();
    let (_, q) = &datagen::queries::nested_queries()[0];
    match gated.prepare(q) {
        Err(ShredError::Verification { code, message }) => {
            assert_eq!(code, codes::UNKNOWN_TABLE);
            assert!(message.contains("no_such_table"), "message: {}", message);
        }
        other => panic!("expected a Verification error, got {:?}", other.map(|_| ())),
    }

    let collecting = Shredder::builder()
        .schema(datagen::organisation_schema())
        .backend(Box::new(CorruptingBackend))
        .verify(false)
        .build()
        .unwrap();
    let prepared = collecting.prepare(q).unwrap();
    assert!(prepared.check().has_errors());
    assert!(prepared.check().has_code(codes::UNKNOWN_TABLE));
    // The diagnostics also surface through explain().
    assert!(prepared
        .explain()
        .to_string()
        .contains(codes::UNKNOWN_TABLE));
}
