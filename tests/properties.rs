//! Property-based tests of the pipeline's key invariants (Theorems 1 and 4):
//! over randomly generated databases and a family of randomly assembled
//! queries, normalisation preserves the nested semantics and shredding +
//! stitching reproduces it, both in memory and through the SQL engine.
//!
//! The random cases are driven by the workspace's own seeded generator
//! (`datagen::Rng`) rather than an external property-testing crate, so the
//! suite is deterministic: a failure always reproduces.

use datagen::Rng;
use query_shredding::prelude::*;
use query_shredding::shredding::pipeline::compile;

const CASES: u64 = 24;

/// A random small organisation database configuration.
fn random_config(rng: &mut Rng) -> OrgConfig {
    OrgConfig {
        departments: rng.range_usize(1, 4),
        employees_per_department: rng.range_usize(1, 7),
        contacts_per_department: rng.range_usize(0, 3),
        seed: rng.next_u64(),
        ..OrgConfig::default()
    }
}

/// A random λNRC query from a small combinator family: a random salary
/// threshold filter, an optional nesting level over employees/tasks and an
/// optional union branch.
fn random_query(rng: &mut Rng) -> nrc::Term {
    let threshold = rng.range_i64(0, 99_999);
    let nest_tasks = rng.chance(0.5);
    let with_union = rng.chance(0.5);
    let with_empty_test = rng.chance(0.5);

    let inner = |dept: nrc::Term| {
        let body = if nest_tasks {
            record(vec![
                ("name", project(var("e"), "name")),
                (
                    "tasks",
                    for_where(
                        "t",
                        table("tasks"),
                        eq(project(var("t"), "employee"), project(var("e"), "name")),
                        singleton(project(var("t"), "task")),
                    ),
                ),
            ])
        } else {
            record(vec![("name", project(var("e"), "name"))])
        };
        let cond = and(
            eq(project(var("e"), "dept"), dept),
            gt(project(var("e"), "salary"), int(threshold)),
        );
        for_where("e", table("employees"), cond, singleton(body))
    };
    let people = if with_union {
        // The contacts branch must have the same element type as the
        // employees branch, so it gets a singleton "buy" task bag when
        // the employees branch is nested (as in the paper's Q6).
        let contact_body = if nest_tasks {
            record(vec![
                ("name", project(var("c"), "name")),
                ("tasks", singleton(string("buy"))),
            ])
        } else {
            record(vec![("name", project(var("c"), "name"))])
        };
        union(
            inner(project(var("d"), "name")),
            for_where(
                "c",
                table("contacts"),
                and(
                    eq(project(var("c"), "dept"), project(var("d"), "name")),
                    project(var("c"), "client"),
                ),
                singleton(contact_body),
            ),
        )
    } else {
        inner(project(var("d"), "name"))
    };
    let dept_cond = if with_empty_test {
        not(is_empty(for_where(
            "e2",
            table("employees"),
            eq(project(var("e2"), "dept"), project(var("d"), "name")),
            singleton(record(vec![])),
        )))
    } else {
        boolean(true)
    };
    for_where(
        "d",
        table("departments"),
        dept_cond,
        singleton(record(vec![
            ("department", project(var("d"), "name")),
            ("people", people),
        ])),
    )
}

/// Run `check` over `CASES` random (database, query) pairs, reporting the
/// per-case seed on failure so it can be replayed.
fn for_random_cases(master_seed: u64, check: impl Fn(&Shredder, &nrc::Term, &Value)) {
    let mut rng = Rng::seed_from_u64(master_seed);
    for case in 0..CASES {
        let config = random_config(&mut rng);
        let q = random_query(&mut rng);
        let db = generate(&config);
        let session = Shredder::over(db).unwrap();
        let reference = session.oracle(&q).unwrap();
        eprintln!("case {} (db seed {})", case, config.seed);
        check(&session, &q, &reference);
    }
}

/// Theorem 1: normalisation preserves the nested semantics.
#[test]
fn normalisation_preserves_semantics() {
    for_random_cases(0xC0FFEE, |session, q, reference| {
        let normalised = shredding::normalise(q, session.schema()).unwrap();
        let renormalised = session.oracle(&normalised.to_term()).unwrap();
        assert!(reference.multiset_eq(&renormalised));
    });
}

/// Theorem 4 (in-memory): stitching the shredded results equals direct
/// evaluation, under every indexing scheme.
#[test]
fn shredding_and_stitching_preserve_semantics() {
    for_random_cases(0xBEEF, |session, q, reference| {
        for scheme in IndexScheme::ALL {
            let in_memory = Shredder::builder()
                .database(session.database().unwrap().clone())
                .backend(Box::new(ShreddedMemoryBackend))
                .index_scheme(scheme)
                .build()
                .unwrap();
            let v = in_memory.run(q).unwrap();
            assert!(v.multiset_eq(reference), "scheme {}", scheme);
        }
    });
}

/// Theorem 4 (SQL path): compiling to SQL, executing on the engine and
/// stitching also equals direct evaluation.
#[test]
fn the_sql_path_preserves_semantics() {
    for_random_cases(0xF00D, |session, q, reference| {
        let via_sql = session.run(q).unwrap();
        assert!(via_sql.multiset_eq(reference));
    });
}

/// Printer↔parser round trip: every SQL string `core::sqlgen` produces for
/// the paper's benchmark suite (QF1–QF6 and Q1–Q6) parses back to an AST
/// that prints identically.
#[test]
fn generated_sql_round_trips_through_the_parser() {
    let schema = organisation_schema();
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    let mut stages = 0;
    for (name, q) in queries {
        let compiled = compile(&q, &schema).unwrap();
        for sql in compiled.sql_texts() {
            let parsed = query_shredding::sqlengine::parse_query(&sql).unwrap_or_else(|e| {
                panic!("{}: generated SQL fails to parse: {}\n{}", name, e, sql)
            });
            let reprinted = query_shredding::sqlengine::print_query(&parsed);
            assert_eq!(
                reprinted, sql,
                "{}: print ∘ parse is not the identity",
                name
            );
            stages += 1;
        }
    }
    assert!(stages >= 12, "the suite must cover every query's stages");
}

/// The loop-lifting baseline is also correct (it is only slower).
#[test]
fn loop_lifting_preserves_semantics() {
    for_random_cases(0xDECAF, |session, q, reference| {
        let lifting = Shredder::builder()
            .database(session.database().unwrap().clone())
            .backend(Box::new(LoopLiftBackend))
            .build()
            .unwrap();
        let lifted = lifting.run(q).unwrap();
        assert!(lifted.multiset_eq(reference));
    });
}
