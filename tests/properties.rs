//! Property-based tests of the pipeline's key invariants (Theorems 1 and 4):
//! over randomly generated databases and a family of randomly assembled
//! queries, normalisation preserves the nested semantics and shredding +
//! stitching reproduces it, both in memory and through the SQL engine.

use proptest::prelude::*;
use query_shredding::prelude::*;

/// A strategy for small organisation databases.
fn db_strategy() -> impl Strategy<Value = OrgConfig> {
    (1usize..5, 1usize..8, 0usize..4, any::<u64>()).prop_map(
        |(departments, employees, contacts, seed)| OrgConfig {
            departments,
            employees_per_department: employees,
            contacts_per_department: contacts,
            seed,
            ..OrgConfig::default()
        },
    )
}

/// A strategy producing λNRC queries from a small combinator family:
/// a random salary threshold filter, an optional nesting level over
/// employees/tasks and an optional union branch.
fn query_strategy() -> impl Strategy<Value = nrc::Term> {
    (0i64..100_000, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(threshold, nest_tasks, with_union, with_empty_test)| {
            let inner = |dept: nrc::Term| {
                let body = if nest_tasks {
                    record(vec![
                        ("name", project(var("e"), "name")),
                        (
                            "tasks",
                            for_where(
                                "t",
                                table("tasks"),
                                eq(project(var("t"), "employee"), project(var("e"), "name")),
                                singleton(project(var("t"), "task")),
                            ),
                        ),
                    ])
                } else {
                    record(vec![("name", project(var("e"), "name"))])
                };
                let cond = and(
                    eq(project(var("e"), "dept"), dept),
                    gt(project(var("e"), "salary"), int(threshold)),
                );
                for_where("e", table("employees"), cond, singleton(body))
            };
            let people = if with_union {
                // The contacts branch must have the same element type as the
                // employees branch, so it gets a singleton "buy" task bag when
                // the employees branch is nested (as in the paper's Q6).
                let contact_body = if nest_tasks {
                    record(vec![
                        ("name", project(var("c"), "name")),
                        ("tasks", singleton(string("buy"))),
                    ])
                } else {
                    record(vec![("name", project(var("c"), "name"))])
                };
                union(
                    inner(project(var("d"), "name")),
                    for_where(
                        "c",
                        table("contacts"),
                        and(
                            eq(project(var("c"), "dept"), project(var("d"), "name")),
                            project(var("c"), "client"),
                        ),
                        singleton(contact_body),
                    ),
                )
            } else {
                inner(project(var("d"), "name"))
            };
            let dept_cond = if with_empty_test {
                not(is_empty(for_where(
                    "e2",
                    table("employees"),
                    eq(project(var("e2"), "dept"), project(var("d"), "name")),
                    singleton(record(vec![])),
                )))
            } else {
                boolean(true)
            };
            for_where(
                "d",
                table("departments"),
                dept_cond,
                singleton(record(vec![
                    ("department", project(var("d"), "name")),
                    ("people", people),
                ])),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: normalisation preserves the nested semantics.
    #[test]
    fn normalisation_preserves_semantics(config in db_strategy(), q in query_strategy()) {
        let schema = organisation_schema();
        let db = generate(&config);
        let reference = eval_nested(&q, &db).unwrap();
        let normalised = shredding::normalise(&q, &schema).unwrap();
        let renormalised = eval_nested(&normalised.to_term(), &db).unwrap();
        prop_assert!(reference.multiset_eq(&renormalised));
    }

    /// Theorem 4 (in-memory): stitching the shredded results equals direct
    /// evaluation, under every indexing scheme.
    #[test]
    fn shredding_and_stitching_preserve_semantics(config in db_strategy(), q in query_strategy()) {
        let schema = organisation_schema();
        let db = generate(&config);
        let reference = eval_nested(&q, &db).unwrap();
        for scheme in [IndexScheme::Canonical, IndexScheme::Flat, IndexScheme::Natural] {
            let v = run_in_memory(&q, &schema, &db, scheme).unwrap();
            prop_assert!(v.multiset_eq(&reference), "scheme {}", scheme);
        }
    }

    /// Theorem 4 (SQL path): compiling to SQL, executing on the engine and
    /// stitching also equals direct evaluation.
    #[test]
    fn the_sql_path_preserves_semantics(config in db_strategy(), q in query_strategy()) {
        let schema = organisation_schema();
        let db = generate(&config);
        let engine = engine_from_database(&db).unwrap();
        let reference = eval_nested(&q, &db).unwrap();
        let via_sql = run(&q, &schema, &engine).unwrap();
        prop_assert!(via_sql.multiset_eq(&reference));
    }

    /// The loop-lifting baseline is also correct (it is only slower).
    #[test]
    fn loop_lifting_preserves_semantics(config in db_strategy(), q in query_strategy()) {
        let schema = organisation_schema();
        let db = generate(&config);
        let engine = engine_from_database(&db).unwrap();
        let reference = eval_nested(&q, &db).unwrap();
        let lifted = run_looplift(&q, &schema, &engine).unwrap();
        prop_assert!(lifted.multiset_eq(&reference));
    }
}
