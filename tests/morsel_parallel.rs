//! Differential tests of morsel-parallel execution: a session built with
//! `workers(4)` must return results *identical* (not merely multiset-equal)
//! to the `workers(1)` sequential baseline for every benchmark query, under
//! every indexing scheme, at every morsel size — and both must agree with
//! the interpreter oracle. Morsel sizes 1 and 7 force every operator down
//! its parallel arm even on the small test database; 4096 is the default.
//!
//! Also covers the two parallel-specific regressions: live views seeded by
//! a parallel execution behave identically to sequentially-seeded ones, and
//! `explain_analyze()` actuals stay exact when operators record from many
//! workers at once.

use query_shredding::prelude::*;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 4,
        employees_per_department: 6,
        contacts_per_department: 3,
        seed: 7,
        ..OrgConfig::default()
    })
}

/// Every benchmark query the paper evaluates: QF1–QF6 and Q1–Q6.
fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

const MORSEL_SIZES: [usize; 3] = [1, 7, 4096];

// ---------------------------------------------------------------------------
// The full differential matrix: 12 queries × 3 schemes × 3 morsel sizes
// ---------------------------------------------------------------------------

/// The acceptance bar of the morsel-parallel executor: for every benchmark
/// query under every indexing scheme, a `workers(4)` session returns a value
/// strictly equal to the `workers(1)` baseline at every morsel size (the
/// executor is deterministic by construction — morsel results are reassembled
/// in morsel order), and both agree with the nested interpreter oracle.
/// Strict equality across morsel sizes also rules out any morsel-size
/// -dependent answer.
#[test]
fn parallel_execution_matches_single_worker_and_oracle_everywhere() {
    let db = small_db();
    let queries = all_benchmark_queries();
    // The oracle evaluates the nested reference semantics directly on the
    // database, so it is scheme-independent: compute it once per query.
    let oracle_session = Shredder::over(db.clone()).unwrap();
    let oracles: Vec<Value> = queries
        .iter()
        .map(|(_, q)| oracle_session.oracle(q).unwrap())
        .collect();

    for scheme in IndexScheme::ALL {
        let single = Shredder::builder()
            .database(db.clone())
            .index_scheme(scheme)
            .workers(1)
            .build()
            .unwrap();
        let baselines: Vec<Value> = queries
            .iter()
            .map(|(_, q)| single.execute(&single.prepare(q).unwrap()).unwrap())
            .collect();
        for (baseline, reference) in baselines.iter().zip(&oracles) {
            // Sanity: the sequential baseline itself matches the oracle.
            assert!(baseline.multiset_eq(reference));
        }
        for morsel_rows in MORSEL_SIZES {
            let parallel = Shredder::builder()
                .database(db.clone())
                .index_scheme(scheme)
                .workers(4)
                .morsel_rows(morsel_rows)
                .build()
                .unwrap();
            for (i, (name, q)) in queries.iter().enumerate() {
                let value = parallel.execute(&parallel.prepare(q).unwrap()).unwrap();
                assert_eq!(
                    value, baselines[i],
                    "{name} under {scheme} indexes at morsel size {morsel_rows}: \
                     workers(4) diverged from the workers(1) baseline"
                );
                assert!(
                    value.multiset_eq(&oracles[i]),
                    "{name} under {scheme} indexes at morsel size {morsel_rows}: \
                     workers(4) diverged from the interpreter oracle"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Live views seeded by a parallel execution
// ---------------------------------------------------------------------------

/// `subscribe()` output is unchanged when the seeding execution ran
/// parallel: a `workers(4)` session with morsel size 1 (every operator on
/// its parallel arm) and a `workers(1)` session hold identical live values
/// initially and after every committed write batch. The delta path itself
/// is always sequential — this proves the parallel seeding feeds it the
/// exact same shredded state.
#[test]
fn live_views_are_unchanged_when_the_seeding_execution_ran_parallel() {
    let db = small_db();
    let parallel = Shredder::builder()
        .database(db.clone())
        .workers(4)
        .morsel_rows(1)
        .build()
        .unwrap();
    let single = Shredder::builder()
        .database(db.clone())
        .workers(1)
        .build()
        .unwrap();

    let queries = datagen::queries::nested_queries();
    let subs: Vec<_> = queries
        .iter()
        .take(3)
        .map(|(_, q)| {
            let sp = parallel.subscribe(&parallel.prepare(q).unwrap()).unwrap();
            let ss = single.subscribe(&single.prepare(q).unwrap()).unwrap();
            (sp, ss)
        })
        .collect();
    for (sp, ss) in &subs {
        assert_eq!(
            sp.value().unwrap(),
            ss.value().unwrap(),
            "parallel seeding changed the initial live value"
        );
    }

    // Apply the same deterministic mutation stream to both sessions.
    let stream_config = || MutationConfig {
        ops_per_batch: 3,
        seed: 13,
        ..MutationConfig::default()
    };
    let mut parallel_stream = MutationStream::over(&db, stream_config());
    let mut single_stream = MutationStream::over(&db, stream_config());
    for round in 0..5 {
        parallel.apply_batch(&parallel_stream.next_batch()).unwrap();
        single.apply_batch(&single_stream.next_batch()).unwrap();
        for (i, (sp, ss)) in subs.iter().enumerate() {
            assert_eq!(
                sp.value().unwrap(),
                ss.value().unwrap(),
                "subscription {i} diverged after batch {round}"
            );
            assert_eq!(sp.generation(), ss.generation());
        }
    }
}

// ---------------------------------------------------------------------------
// explain_analyze() actuals stay exact under parallelism
// ---------------------------------------------------------------------------

/// Per-operator actuals are aggregated atomically across workers: at
/// `workers(4)` with morsel size 1 the root operator of every stage still
/// reports exactly the stage's result cardinality as rows_out, matching the
/// oracle — no samples are lost or double-counted under concurrency.
#[test]
fn explain_analyze_root_rows_out_matches_oracle_cardinality_at_four_workers() {
    let session = Shredder::builder()
        .database(small_db())
        .profile(true)
        .workers(4)
        .morsel_rows(1)
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    let prepared = session.prepare(&q).unwrap();
    session.execute(&prepared).unwrap();

    // Oracle cardinalities: one outer row per department, one inner row per
    // (department, employee) pair.
    let oracle = session.oracle(&q).unwrap();
    let outer = oracle.as_bag().unwrap();
    let inner_total: usize = outer
        .iter()
        .map(|row| {
            let fields = row.as_record().unwrap();
            let (_, employees) = fields.iter().find(|(l, _)| l == "employees").unwrap();
            employees.as_bag().unwrap().len()
        })
        .sum();
    assert_eq!(outer.len(), 4);
    assert!(inner_total > outer.len());

    let profiles = session.recent_profiles();
    let profile = profiles.last().expect("the default ring sink records");
    assert!(profile.profiled);
    let root_rows = |stage: usize| {
        profile
            .operators
            .iter()
            .find(|op| op.stage == stage && op.node == 0)
            .unwrap_or_else(|| panic!("stage {} has a root operator", stage))
            .rows_out
    };
    assert_eq!(root_rows(0) as usize, outer.len());
    assert_eq!(root_rows(1) as usize, inner_total);

    let analyzed = prepared.explain_analyze().unwrap();
    assert!(
        analyzed.contains(&format!("rows_out={}", outer.len())),
        "{analyzed}"
    );
    assert!(
        analyzed.contains(&format!("rows_out={}", inner_total)),
        "{analyzed}"
    );
}
