//! End-to-end integration tests spanning all workspace crates: every
//! benchmark query of the paper's evaluation is compiled, executed on the SQL
//! engine and compared against the nested reference semantics (Theorem 4),
//! for query shredding and for the loop-lifting baseline — all through the
//! `Shredder` session API.

use query_shredding::prelude::*;
use query_shredding::shredding;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 4,
        employees_per_department: 6,
        contacts_per_department: 3,
        seed: 7,
        ..OrgConfig::default()
    })
}

/// One session per compared backend, all sharing one loaded engine. Only the
/// shredding session owns the database (it provides the oracle); the
/// baseline sessions are schema + engine only.
fn sessions() -> (Shredder, Shredder, Shredder) {
    let shredding = Shredder::builder().database(small_db()).build().unwrap();
    let engine = shredding.shared_engine().unwrap();
    let looplift = Shredder::builder()
        .schema(organisation_schema())
        .engine(engine.clone())
        .backend(Box::new(LoopLiftBackend))
        .build()
        .unwrap();
    let flat = Shredder::builder()
        .schema(organisation_schema())
        .engine(engine)
        .backend(Box::new(FlatDefaultBackend))
        .build()
        .unwrap();
    (shredding, looplift, flat)
}

#[test]
fn all_flat_benchmark_queries_agree_across_systems() {
    let (shredding, looplift, flat) = sessions();
    for (name, q) in datagen::queries::flat_queries() {
        let reference = shredding.oracle(&q).unwrap();
        let shredded = shredding.run(&q).unwrap();
        let lifted = looplift.run(&q).unwrap();
        let default = flat.run(&q).unwrap();
        assert!(shredded.multiset_eq(&reference), "{} via shredding", name);
        assert!(lifted.multiset_eq(&reference), "{} via loop-lifting", name);
        assert!(
            default.multiset_eq(&reference),
            "{} via default flat evaluation",
            name
        );
    }
}

#[test]
fn all_nested_benchmark_queries_agree_across_systems() {
    let (shredding, looplift, _) = sessions();
    for (name, q) in datagen::queries::nested_queries() {
        let reference = shredding.oracle(&q).unwrap();
        let shredded = shredding.run(&q).unwrap();
        let lifted = looplift.run(&q).unwrap();
        assert!(shredded.multiset_eq(&reference), "{} via shredding", name);
        assert!(lifted.multiset_eq(&reference), "{} via loop-lifting", name);
    }
}

#[test]
fn nested_queries_agree_under_every_indexing_scheme() {
    let db = small_db();
    let oracle = Shredder::builder()
        .database(db.clone())
        .backend(Box::new(NestedOracleBackend))
        .build()
        .unwrap();
    for (name, q) in datagen::queries::nested_queries() {
        let reference = oracle.run(&q).unwrap();
        for scheme in IndexScheme::ALL {
            let session = Shredder::builder()
                .database(db.clone())
                .backend(Box::new(ShreddedMemoryBackend))
                .index_scheme(scheme)
                .build()
                .unwrap();
            let v = session.run(&q).unwrap();
            assert!(
                v.multiset_eq(&reference),
                "{} with {} indexes disagrees with the nested semantics",
                name,
                scheme
            );
        }
    }
}

#[test]
fn query_counts_match_nesting_degrees() {
    // A schema-only session can plan and explain without any data.
    let planner = Shredder::builder()
        .schema(organisation_schema())
        .build()
        .unwrap();
    let expected = [
        ("Q1", 4),
        ("Q2", 1),
        ("Q3", 2),
        ("Q4", 2),
        ("Q5", 2),
        ("Q6", 3),
    ];
    for ((name, q), (ename, degree)) in datagen::queries::nested_queries().into_iter().zip(expected)
    {
        assert_eq!(name, ename);
        let prepared = planner.prepare(&q).unwrap();
        assert_eq!(prepared.query_count(), degree, "query count of {}", name);
        assert_eq!(prepared.result_type().nesting_degree(), degree);
    }
}

#[test]
fn generated_sql_round_trips_through_the_parser() {
    let planner = Shredder::builder()
        .schema(organisation_schema())
        .build()
        .unwrap();
    for (_, q) in datagen::queries::nested_queries() {
        let prepared = planner.prepare(&q).unwrap();
        for text in prepared.sql_texts() {
            let parsed = sqlengine::parse_query(&text).expect("generated SQL parses");
            let reprinted = sqlengine::print_query(&parsed);
            let reparsed = sqlengine::parse_query(&reprinted).unwrap();
            assert_eq!(parsed, reparsed);
        }
    }
}

#[test]
fn the_default_backend_rejects_nested_queries_like_stock_links() {
    let (_, _, flat) = sessions();
    let err = flat.run(&datagen::queries::q1());
    assert!(
        err.is_err(),
        "default flat evaluation must reject nested results"
    );
}

#[test]
fn results_scale_with_the_data() {
    let q = datagen::queries::q4();
    let small = Shredder::over(generate(&OrgConfig {
        departments: 2,
        employees_per_department: 5,
        ..OrgConfig::default()
    }))
    .unwrap();
    let large = Shredder::over(generate(&OrgConfig {
        departments: 6,
        employees_per_department: 5,
        ..OrgConfig::default()
    }))
    .unwrap();
    assert_eq!(small.run(&q).unwrap().as_bag().unwrap().len(), 2);
    assert_eq!(large.run(&q).unwrap().as_bag().unwrap().len(), 6);
}

#[test]
fn the_low_level_pipeline_building_blocks_remain_usable() {
    // The deprecated pre-session shims (`run`, `run_in_memory`,
    // `eval_nested`) are gone; the composable building blocks they wrapped
    // stay available for callers that want to drive the stages by hand.
    let db = small_db();
    let schema = organisation_schema();
    let engine = shredding::pipeline::engine_from_database(&db).unwrap();
    let q = datagen::queries::q4();
    let reference = Shredder::over(db).unwrap().oracle(&q).unwrap();
    let compiled = shredding::pipeline::compile(&q, &schema).unwrap();
    assert_eq!(compiled.query_count(), 2);
    assert!(shredding::pipeline::execute(&compiled, &engine)
        .unwrap()
        .multiset_eq(&reference));
}
