//! End-to-end integration tests spanning all workspace crates: every
//! benchmark query of the paper's evaluation is compiled, executed on the SQL
//! engine and compared against the nested reference semantics (Theorem 4),
//! for query shredding and for the loop-lifting baseline.

use query_shredding::prelude::*;

fn small_instance() -> (Schema, Database, sqlengine::Engine) {
    let schema = organisation_schema();
    let db = generate(&OrgConfig {
        departments: 4,
        employees_per_department: 6,
        contacts_per_department: 3,
        seed: 7,
        ..OrgConfig::default()
    });
    let engine = engine_from_database(&db).unwrap();
    (schema, db, engine)
}

#[test]
fn all_flat_benchmark_queries_agree_across_systems() {
    let (schema, db, engine) = small_instance();
    for (name, q) in datagen::queries::flat_queries() {
        let reference = eval_nested(&q, &db).unwrap();
        let shredded = run(&q, &schema, &engine).unwrap();
        let lifted = run_looplift(&q, &schema, &engine).unwrap();
        let default = run_flat(&q, &schema, &engine).unwrap();
        assert!(shredded.multiset_eq(&reference), "{} via shredding", name);
        assert!(lifted.multiset_eq(&reference), "{} via loop-lifting", name);
        assert!(default.multiset_eq(&reference), "{} via default flat evaluation", name);
    }
}

#[test]
fn all_nested_benchmark_queries_agree_across_systems() {
    let (schema, db, engine) = small_instance();
    for (name, q) in datagen::queries::nested_queries() {
        let reference = eval_nested(&q, &db).unwrap();
        let shredded = run(&q, &schema, &engine).unwrap();
        let lifted = run_looplift(&q, &schema, &engine).unwrap();
        assert!(shredded.multiset_eq(&reference), "{} via shredding", name);
        assert!(lifted.multiset_eq(&reference), "{} via loop-lifting", name);
    }
}

#[test]
fn nested_queries_agree_under_every_indexing_scheme() {
    let (schema, db, _) = small_instance();
    for (name, q) in datagen::queries::nested_queries() {
        let reference = eval_nested(&q, &db).unwrap();
        for scheme in [IndexScheme::Canonical, IndexScheme::Flat, IndexScheme::Natural] {
            let v = run_in_memory(&q, &schema, &db, scheme).unwrap();
            assert!(
                v.multiset_eq(&reference),
                "{} with {} indexes disagrees with the nested semantics",
                name,
                scheme
            );
        }
    }
}

#[test]
fn query_counts_match_nesting_degrees() {
    let schema = organisation_schema();
    let expected = [("Q1", 4), ("Q2", 1), ("Q3", 2), ("Q4", 2), ("Q5", 2), ("Q6", 3)];
    for ((name, q), (ename, degree)) in datagen::queries::nested_queries().into_iter().zip(expected)
    {
        assert_eq!(name, ename);
        let compiled = compile(&q, &schema).unwrap();
        assert_eq!(compiled.query_count(), degree, "query count of {}", name);
        assert_eq!(compiled.result_type.nesting_degree(), degree);
    }
}

#[test]
fn generated_sql_round_trips_through_the_parser() {
    let schema = organisation_schema();
    for (_, q) in datagen::queries::nested_queries() {
        let compiled = compile(&q, &schema).unwrap();
        for text in compiled.sql_texts() {
            let parsed = sqlengine::parse_query(&text).expect("generated SQL parses");
            let reprinted = sqlengine::print_query(&parsed);
            let reparsed = sqlengine::parse_query(&reprinted).unwrap();
            assert_eq!(parsed, reparsed);
        }
    }
}

#[test]
fn the_default_backend_rejects_nested_queries_like_stock_links() {
    let (schema, _, engine) = small_instance();
    let err = run_flat(&datagen::queries::q1(), &schema, &engine);
    assert!(err.is_err(), "default flat evaluation must reject nested results");
}

#[test]
fn results_scale_with_the_data() {
    let schema = organisation_schema();
    let small = generate(&OrgConfig { departments: 2, employees_per_department: 5, ..OrgConfig::default() });
    let large = generate(&OrgConfig { departments: 6, employees_per_department: 5, ..OrgConfig::default() });
    let q = datagen::queries::q4();
    let small_engine = engine_from_database(&small).unwrap();
    let large_engine = engine_from_database(&large).unwrap();
    let small_result = run(&q, &schema, &small_engine).unwrap();
    let large_result = run(&q, &schema, &large_engine).unwrap();
    assert_eq!(small_result.as_bag().unwrap().len(), 2);
    assert_eq!(large_result.as_bag().unwrap().len(), 6);
}
