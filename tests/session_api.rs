//! Integration tests of the `Shredder` session API: plan-cache behaviour,
//! builder validation, explain output, and backend-vs-oracle agreement
//! across all three indexing schemes on the paper's full benchmark suite
//! (QF1–QF6 and Q1–Q6).

use query_shredding::prelude::*;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 3,
        employees_per_department: 5,
        contacts_per_department: 2,
        seed: 11,
        ..OrgConfig::default()
    })
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

#[test]
fn a_second_execution_of_the_same_query_skips_recompilation() {
    let session = Shredder::over(small_db()).unwrap();
    let q = datagen::queries::q4();

    let first = session.run(&q).unwrap();
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1), "first run compiles");

    let second = session.run(&q).unwrap();
    let stats = session.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 1),
        "second run is served from the plan cache without recompiling"
    );
    assert!(first.multiset_eq(&second));

    // The cached handle says so itself.
    assert!(session.prepare(&q).unwrap().from_cache());
}

#[test]
fn cached_plans_re_execute_without_parsing_or_planning() {
    let session = Shredder::over(small_db()).unwrap();
    let q = datagen::queries::q4();

    // First run: one cache miss compiles the stages, including their
    // physical plans (planned against the schema, not the engine).
    session.run(&q).unwrap();
    // Repeat runs are cache hits; execution runs the cached physical plans
    // directly, so the engine itself never parses or plans anything.
    for _ in 0..3 {
        session.run(&q).unwrap();
    }
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (3, 1));
    assert_eq!(
        session.engine().unwrap().plans_built(),
        0,
        "re-executing a cached PreparedQuery must do zero engine-side \
         parsing or planning"
    );
}

#[test]
fn the_cache_is_keyed_on_the_normal_form() {
    let session = Shredder::over(small_db()).unwrap();
    // Two syntactically different writings that normalise to the same
    // normal form (a trivially-true `where` is erased by normalisation)
    // share one cached plan.
    let q1 = for_in(
        "d",
        table("departments"),
        singleton(project(var("d"), "name")),
    );
    let q2 = for_where(
        "d",
        table("departments"),
        boolean(true),
        singleton(project(var("d"), "name")),
    );
    session.prepare(&q1).unwrap();
    let again = session.prepare(&q2).unwrap();
    assert!(
        again.from_cache(),
        "queries with the same normal form should share a cached plan"
    );
}

#[test]
fn distinct_queries_occupy_distinct_cache_entries() {
    let session = Shredder::over(small_db()).unwrap();
    for (_, q) in datagen::queries::nested_queries() {
        session.prepare(&q).unwrap();
    }
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 6);
    assert_eq!(stats.entries, 6);
    assert_eq!(stats.hits, 0);
}

#[test]
fn lru_eviction_bounds_the_cache() {
    let session = Shredder::builder()
        .database(small_db())
        .plan_cache_capacity(2)
        .build()
        .unwrap();
    let queries = datagen::queries::nested_queries();
    for (_, q) in &queries {
        session.prepare(q).unwrap();
    }
    let stats = session.cache_stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.evictions, 4);
    // The two most recent plans are hits; older ones were evicted.
    assert!(session.prepare(&queries[5].1).unwrap().from_cache());
    assert!(!session.prepare(&queries[0].1).unwrap().from_cache());
}

#[test]
fn disabled_caches_always_recompile() {
    let session = Shredder::builder()
        .database(small_db())
        .without_plan_cache()
        .build()
        .unwrap();
    let q = datagen::queries::q4();
    assert!(!session.prepare(&q).unwrap().from_cache());
    assert!(!session.prepare(&q).unwrap().from_cache());
    assert_eq!(session.cache_stats(), Default::default());
}

#[test]
fn clearing_the_cache_forces_recompilation() {
    let session = Shredder::over(small_db()).unwrap();
    let q = datagen::queries::q4();
    session.prepare(&q).unwrap();
    session.clear_plan_cache();
    assert!(!session.prepare(&q).unwrap().from_cache());
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

#[test]
fn building_without_schema_or_database_fails() {
    let err = Shredder::builder().build().unwrap_err();
    assert!(err.to_string().contains("schema"), "got: {}", err);
}

#[test]
fn building_with_a_mismatched_schema_fails() {
    let other = Schema::new().with_table(TableSchema::new(
        "unrelated",
        vec![("x", nrc::BaseType::Int)],
    ));
    let err = Shredder::builder()
        .schema(other)
        .database(small_db())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("differs"), "got: {}", err);
}

#[test]
fn building_with_a_zero_capacity_cache_fails() {
    let err = Shredder::builder()
        .database(small_db())
        .plan_cache_capacity(0)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("non-zero"), "got: {}", err);
}

#[test]
fn cache_capacity_and_without_cache_are_mutually_exclusive() {
    let err = Shredder::builder()
        .database(small_db())
        .plan_cache_capacity(8)
        .without_plan_cache()
        .build()
        .unwrap_err();
    assert!(
        err.to_string().contains("mutually exclusive"),
        "got: {}",
        err
    );
}

#[test]
fn schema_only_sessions_plan_but_refuse_to_execute() {
    let planner = Shredder::builder()
        .schema(organisation_schema())
        .build()
        .unwrap();
    let prepared = planner.prepare(&datagen::queries::q6()).unwrap();
    assert_eq!(prepared.query_count(), 3);
    let err = planner.execute(&prepared).unwrap_err();
    assert!(err.to_string().contains("no database"), "got: {}", err);
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

#[test]
fn explain_reports_per_stage_sql_indexes_and_layout() {
    let session = Shredder::over(small_db()).unwrap();
    let prepared = session.prepare(&datagen::queries::q6()).unwrap();
    let explain = prepared.explain();
    assert_eq!(explain.backend, "sqlengine");
    assert_eq!(explain.stages.len(), 3);
    assert!(!explain.static_indexes.is_empty());
    for stage in &explain.stages {
        assert!(stage.sql.is_some());
        assert!(!stage.columns.is_empty());
        assert!(
            stage.physical.is_some(),
            "the sqlengine backend pre-plans every stage"
        );
    }
    let text = explain.to_string();
    assert!(text.contains("backend=sqlengine"));
    assert!(text.contains("WITH") || text.contains("SELECT"), "{}", text);
    assert!(
        text.contains("ROW_NUMBER"),
        "inner stages number their rows"
    );
    assert!(
        text.contains("physical plan:") && text.contains("TableScan"),
        "explain renders the physical plan alongside the SQL:\n{}",
        text
    );
}

// ---------------------------------------------------------------------------
// Backend-vs-oracle agreement on the full benchmark suite
// ---------------------------------------------------------------------------

/// Every benchmark query the paper evaluates: QF1–QF6 and Q1–Q6.
fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

#[test]
fn the_sqlengine_backend_agrees_with_the_oracle_on_every_benchmark_query() {
    let session = Shredder::over(small_db()).unwrap();
    for (name, q) in all_benchmark_queries() {
        let reference = session.oracle(&q).unwrap();
        let value = session.run(&q).unwrap();
        assert!(value.multiset_eq(&reference), "{} via sqlengine", name);
    }
}

#[test]
fn the_shredded_memory_backend_agrees_with_the_oracle_under_every_scheme() {
    let db = small_db();
    let oracle = Shredder::builder()
        .database(db.clone())
        .backend(Box::new(NestedOracleBackend))
        .build()
        .unwrap();
    for scheme in IndexScheme::ALL {
        let session = Shredder::builder()
            .database(db.clone())
            .backend(Box::new(ShreddedMemoryBackend))
            .index_scheme(scheme)
            .build()
            .unwrap();
        for (name, q) in all_benchmark_queries() {
            let reference = oracle.run(&q).unwrap();
            let value = session.run(&q).unwrap();
            assert!(
                value.multiset_eq(&reference),
                "{} via shredded-memory under {} indexes",
                name,
                scheme
            );
        }
    }
}

#[test]
fn the_looplift_backend_agrees_with_the_oracle_on_every_benchmark_query() {
    let session = Shredder::builder()
        .database(small_db())
        .backend(Box::new(LoopLiftBackend))
        .build()
        .unwrap();
    for (name, q) in all_benchmark_queries() {
        let reference = session.oracle(&q).unwrap();
        let value = session.run(&q).unwrap();
        assert!(value.multiset_eq(&reference), "{} via looplift", name);
    }
}

#[test]
fn the_flat_backend_agrees_on_flat_queries_and_rejects_nested_ones() {
    let session = Shredder::builder()
        .database(small_db())
        .backend(Box::new(FlatDefaultBackend))
        .build()
        .unwrap();
    for (name, q) in datagen::queries::flat_queries() {
        let reference = session.oracle(&q).unwrap();
        let value = session.run(&q).unwrap();
        assert!(value.multiset_eq(&reference), "{} via flat-default", name);
    }
    let planner = Shredder::builder()
        .schema(organisation_schema())
        .build()
        .unwrap();
    for (name, q) in datagen::queries::nested_queries() {
        // Q2's result happens to be flat (nesting degree 1); every query
        // with a genuinely nested result must be rejected like stock Links.
        let degree = planner.prepare(&q).unwrap().result_type().nesting_degree();
        if degree > 1 {
            assert!(session.prepare(&q).is_err(), "{} must be rejected", name);
        } else {
            let reference = session.oracle(&q).unwrap();
            assert!(session.run(&q).unwrap().multiset_eq(&reference), "{}", name);
        }
    }
}

#[test]
fn prepared_queries_do_not_cross_sessions_with_different_schemes() {
    let db = small_db();
    let flat = Shredder::builder()
        .database(db.clone())
        .backend(Box::new(ShreddedMemoryBackend))
        .index_scheme(IndexScheme::Flat)
        .build()
        .unwrap();
    let natural = Shredder::builder()
        .database(db)
        .backend(Box::new(ShreddedMemoryBackend))
        .index_scheme(IndexScheme::Natural)
        .build()
        .unwrap();
    let prepared = flat.prepare(&datagen::queries::q4()).unwrap();
    let err = natural.execute(&prepared).unwrap_err();
    assert!(err.to_string().contains("indexes"), "got: {}", err);
}

#[test]
fn prepared_queries_do_not_cross_sessions_with_different_schemas() {
    let schema = Schema::new().with_table(
        TableSchema::new("items", vec![("id", nrc::BaseType::Int)]).with_key(vec!["id"]),
    );
    let other = Shredder::builder().schema(schema).build().unwrap();
    let planner = Shredder::builder()
        .schema(organisation_schema())
        .build()
        .unwrap();
    let prepared = planner.prepare(&datagen::queries::q4()).unwrap();
    let err = other.execute(&prepared).unwrap_err();
    assert!(err.to_string().contains("schema"), "got: {}", err);
}

#[test]
fn prepared_queries_do_not_cross_sessions_with_different_backends() {
    let db = small_db();
    let sql = Shredder::over(db.clone()).unwrap();
    let lifting = Shredder::builder()
        .database(db)
        .backend(Box::new(LoopLiftBackend))
        .build()
        .unwrap();
    let prepared = sql.prepare(&datagen::queries::q4()).unwrap();
    let err = lifting.execute(&prepared).unwrap_err();
    assert!(err.to_string().contains("backend"), "got: {}", err);
}
