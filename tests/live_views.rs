//! Integration tests of live nested views: `Shredder::subscribe` keeps a
//! prepared query's nested result maintained across `apply_batch` writes,
//! and after every committed batch the subscription's value must be
//! identical to recomputing the query from scratch on the post-write
//! storage — across the full benchmark suite (QF1–QF6 and Q1–Q6) and all
//! three indexing schemes.

use query_shredding::prelude::*;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 3,
        employees_per_department: 5,
        contacts_per_department: 2,
        seed: 11,
        ..OrgConfig::default()
    })
}

fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

/// The acceptance bar of the delta subsystem: for every benchmark query,
/// under every indexing scheme, a subscription's value after each of a
/// stream of committed write batches is multiset-identical to a fresh
/// execution of the same prepared query (the differential oracle). Reseeds
/// are allowed — a query outside the incremental fragment falls back to
/// recompute-from-scratch — but divergence never is.
#[test]
fn subscriptions_match_recompute_after_every_write_batch_under_every_scheme() {
    let db = small_db();
    for scheme in IndexScheme::ALL {
        for (name, q) in all_benchmark_queries() {
            let session = Shredder::builder()
                .database(db.clone())
                .index_scheme(scheme)
                .build()
                .unwrap();
            let prepared = session.prepare(&q).unwrap();
            let sub = session.subscribe(&prepared).unwrap();
            let mut stream = MutationStream::over(
                &db,
                MutationConfig {
                    ops_per_batch: 3,
                    seed: 7,
                    ..MutationConfig::default()
                },
            );
            for round in 0..6 {
                let batch = stream.next_batch();
                session.apply_batch(&batch).unwrap();
                let live = sub.value().unwrap();
                let recomputed = session.execute(&prepared).unwrap();
                assert!(
                    live.multiset_eq(&recomputed),
                    "{name} under {scheme} indexes diverged from recompute \
                     after batch {round}"
                );
            }
            assert_eq!(sub.generation(), 6, "every batch maintains the view");
        }
    }
}

/// A subscription taken *after* some writes starts from the current
/// storage, not the session's load-time database.
#[test]
fn a_late_subscription_sees_previous_writes() {
    let db = small_db();
    let session = Shredder::over(db.clone()).unwrap();
    let (_, q) = datagen::queries::nested_queries().remove(0);
    let prepared = session.prepare(&q).unwrap();

    let mut stream = MutationStream::over(
        &db,
        MutationConfig {
            ops_per_batch: 4,
            seed: 3,
            ..MutationConfig::default()
        },
    );
    session.apply_batch(&stream.next_batch()).unwrap();

    let sub = session.subscribe(&prepared).unwrap();
    assert!(sub
        .value()
        .unwrap()
        .multiset_eq(&session.execute(&prepared).unwrap()));
    assert_eq!(sub.generation(), 0, "no batch maintained it yet");

    session.apply_batch(&stream.next_batch()).unwrap();
    assert!(sub
        .value()
        .unwrap()
        .multiset_eq(&session.execute(&prepared).unwrap()));
    assert_eq!(sub.generation(), 1);
}

/// Two subscriptions to different queries are maintained independently by
/// the same committed batches, and cloned handles share one live view.
#[test]
fn multiple_subscriptions_are_maintained_by_the_same_writes() {
    let db = small_db();
    let session = Shredder::over(db.clone()).unwrap();
    let queries = datagen::queries::nested_queries();
    let p1 = session.prepare(&queries[0].1).unwrap();
    let p2 = session.prepare(&queries[3].1).unwrap();
    let s1 = session.subscribe(&p1).unwrap();
    let s2 = session.subscribe(&p2).unwrap();
    let s1_clone = s1.clone();

    let mut stream = MutationStream::over(
        &db,
        MutationConfig {
            ops_per_batch: 2,
            seed: 19,
            ..MutationConfig::default()
        },
    );
    for _ in 0..4 {
        session.apply_batch(&stream.next_batch()).unwrap();
        assert!(s1
            .value()
            .unwrap()
            .multiset_eq(&session.execute(&p1).unwrap()));
        assert!(s2
            .value()
            .unwrap()
            .multiset_eq(&session.execute(&p2).unwrap()));
    }
    assert_eq!(s1.generation(), 4);
    assert_eq!(s1_clone.generation(), 4, "clones share the live view");
    assert_eq!(s2.generation(), 4);
}

/// `maintain_nanos` accumulates only across maintained batches — it is the
/// maintenance-only cost a benchmark compares against full recompute.
#[test]
fn maintain_nanos_accumulates_per_maintained_batch() {
    let db = small_db();
    let session = Shredder::over(db.clone()).unwrap();
    let (_, q) = datagen::queries::nested_queries().remove(0);
    let prepared = session.prepare(&q).unwrap();
    let sub = session.subscribe(&prepared).unwrap();
    assert_eq!(sub.maintain_nanos(), 0, "nothing maintained yet");

    let mut stream = MutationStream::over(
        &db,
        MutationConfig {
            ops_per_batch: 1,
            seed: 5,
            ..MutationConfig::default()
        },
    );
    session.apply_batch(&stream.next_batch()).unwrap();
    let after_one = sub.maintain_nanos();
    assert!(after_one > 0, "a maintained batch costs measurable time");
    session.apply_batch(&stream.next_batch()).unwrap();
    assert!(sub.maintain_nanos() > after_one, "the counter accumulates");
}
