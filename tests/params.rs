//! Differential tests of parameterized prepared queries: bound-parameter
//! execution must equal constant-inlined execution on every benchmark query,
//! across every backend and all three indexing schemes; the plan cache must
//! key on the param *shape* (same shape + different constants = cache hit);
//! and re-executing a prepared shape with fresh bindings must do zero
//! engine-side parsing or planning.

use query_shredding::prelude::*;
use query_shredding::shredding::auto_parameterize;
use query_shredding::shredding::error::ShredError;
use query_shredding::sqlengine;

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 3,
        employees_per_department: 5,
        contacts_per_department: 2,
        seed: 23,
        ..OrgConfig::default()
    })
}

/// A nested query filtering on two explicit parameters: employees of the
/// department `?dpt` earning more than `?cutoff`, with their tasks.
fn parameterized_nested_query() -> nrc::Term {
    for_where(
        "e",
        table("employees"),
        and(
            eq(project(var("e"), "dept"), string_param("dpt")),
            gt(project(var("e"), "salary"), int_param("cutoff")),
        ),
        singleton(record(vec![
            ("name", project(var("e"), "name")),
            (
                "tasks",
                for_where(
                    "t",
                    table("tasks"),
                    eq(project(var("t"), "employee"), project(var("e"), "name")),
                    singleton(project(var("t"), "task")),
                ),
            ),
        ])),
    )
}

/// The same query with the constants inlined.
fn inlined_nested_query(dpt: &str, cutoff: i64) -> nrc::Term {
    for_where(
        "e",
        table("employees"),
        and(
            eq(project(var("e"), "dept"), string(dpt)),
            gt(project(var("e"), "salary"), int(cutoff)),
        ),
        singleton(record(vec![
            ("name", project(var("e"), "name")),
            (
                "tasks",
                for_where(
                    "t",
                    table("tasks"),
                    eq(project(var("t"), "employee"), project(var("e"), "name")),
                    singleton(project(var("t"), "task")),
                ),
            ),
        ])),
    )
}

fn nested_capable_backends() -> Vec<(Box<dyn SqlBackend>, IndexScheme)> {
    let mut out: Vec<(Box<dyn SqlBackend>, IndexScheme)> = vec![
        (Box::new(SqlEngineBackend), IndexScheme::Flat),
        (Box::new(NestedOracleBackend), IndexScheme::Flat),
        (Box::new(LoopLiftBackend), IndexScheme::Flat),
    ];
    for scheme in IndexScheme::ALL {
        out.push((Box::new(ShreddedMemoryBackend), scheme));
    }
    out
}

#[test]
fn bound_execution_equals_constant_inlined_execution_on_every_backend() {
    let db = small_db();
    let oracle = Shredder::over(db.clone()).unwrap();
    let cases = [("dept_00000", 0i64), ("dept_00001", 30_000), ("missing", 5)];
    for (backend, scheme) in nested_capable_backends() {
        let name = backend.name();
        let session = Shredder::builder()
            .database(db.clone())
            .backend(backend)
            .index_scheme(scheme)
            .build()
            .unwrap();
        let prepared = session.prepare(&parameterized_nested_query()).unwrap();
        assert_eq!(prepared.params().len(), 2, "{}", name);
        for (dpt, cutoff) in cases {
            let bound = session
                .execute_bound(
                    &prepared,
                    &Params::new().bind("dpt", dpt).bind("cutoff", cutoff),
                )
                .unwrap();
            let reference = oracle.oracle(&inlined_nested_query(dpt, cutoff)).unwrap();
            assert!(
                bound.multiset_eq(&reference),
                "backend {} under {} indexes disagrees for ({}, {})",
                name,
                scheme,
                dpt,
                cutoff
            );
        }
    }
}

#[test]
fn the_flat_backend_accepts_bindings_on_flat_queries() {
    let db = small_db();
    let oracle = Shredder::over(db.clone()).unwrap();
    let session = Shredder::builder()
        .database(db)
        .backend(Box::new(FlatDefaultBackend))
        .build()
        .unwrap();
    let q = for_where(
        "e",
        table("employees"),
        gt(project(var("e"), "salary"), int_param("cutoff")),
        singleton(record(vec![("name", project(var("e"), "name"))])),
    );
    let prepared = session.prepare(&q).unwrap();
    for cutoff in [0i64, 25_000, i64::MAX] {
        let bound = session
            .execute_bound(&prepared, &Params::new().bind("cutoff", cutoff))
            .unwrap();
        let reference = oracle
            .oracle_bound(&q, &Params::new().bind("cutoff", cutoff))
            .unwrap();
        assert!(bound.multiset_eq(&reference), "cutoff {}", cutoff);
    }
}

/// Every benchmark query: a session with auto-parameterization (the default)
/// must agree with a session that inlines constants, on every backend and
/// every indexing scheme that supports the query.
#[test]
fn auto_parameterized_benchmark_queries_agree_with_inlined_execution() {
    let db = small_db();
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    for (backend, scheme) in nested_capable_backends() {
        let name = backend.name();
        let auto = Shredder::builder()
            .database(db.clone())
            .backend(backend)
            .index_scheme(scheme)
            .build()
            .unwrap();
        let inlined = Shredder::builder()
            .database(db.clone())
            .backend(match name {
                "sqlengine" => Box::new(SqlEngineBackend) as Box<dyn SqlBackend>,
                "oracle" => Box::new(NestedOracleBackend),
                "looplift" => Box::new(LoopLiftBackend),
                "shredded-memory" => Box::new(ShreddedMemoryBackend),
                other => panic!("unexpected backend {}", other),
            })
            .index_scheme(scheme)
            .auto_parameterize(false)
            .build()
            .unwrap();
        for (qname, q) in &queries {
            let a = auto.run(q).unwrap();
            let b = inlined.run(q).unwrap();
            assert!(
                a.multiset_eq(&b),
                "{} via {} under {} indexes: auto-parameterized execution \
                 disagrees with inlined execution",
                qname,
                name,
                scheme
            );
        }
    }
}

#[test]
fn same_shape_with_different_constants_is_a_cache_hit() {
    let session = Shredder::over(small_db()).unwrap();
    let q = |dpt: &str, cutoff: i64| inlined_nested_query(dpt, cutoff);
    let a = session.run(&q("dept_00000", 0)).unwrap();
    let b = session.run(&q("dept_00001", 10_000)).unwrap();
    let stats = session.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 1),
        "two queries differing only in constants must share one cached plan"
    );
    assert_ne!(
        a, b,
        "different constants must still produce different rows"
    );
    // The auto-parameterization itself is deterministic and shape-stable.
    let (p1, d1) = auto_parameterize(&q("dept_00000", 0));
    let (p2, d2) = auto_parameterize(&q("dept_00001", 10_000));
    assert_eq!(p1, p2, "lifted terms of one shape must be identical");
    assert_ne!(d1, d2, "their default bindings must differ");
}

#[test]
fn repeat_bound_executions_do_zero_parsing_shredding_or_planning() {
    let session = Shredder::over(small_db()).unwrap();
    let prepared = session.prepare(&parameterized_nested_query()).unwrap();
    for i in 0..10i64 {
        let dpt = format!("dept_{:05}", i % 3);
        let params = Params::new().bind("dpt", dpt.as_str()).bind("cutoff", i);
        let bound = session.execute_bound(&prepared, &params).unwrap();
        let reference = session
            .oracle_bound(&parameterized_nested_query(), &params)
            .unwrap();
        assert!(bound.multiset_eq(&reference), "binding round {}", i);
    }
    assert_eq!(
        session.engine().unwrap().plans_built(),
        0,
        "bound re-execution must never reach the engine's planner"
    );
    let stats = session.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 1),
        "one prepare, no further compilations"
    );
}

// ---------------------------------------------------------------------------
// Typed binding errors
// ---------------------------------------------------------------------------

#[test]
fn missing_bindings_are_reported_with_the_declared_type() {
    let session = Shredder::over(small_db()).unwrap();
    let prepared = session.prepare(&parameterized_nested_query()).unwrap();
    let err = session
        .execute_bound(&prepared, &Params::new().bind("dpt", "dept_00000"))
        .unwrap_err();
    match err {
        ShredError::MissingParam { ref name, expected } => {
            assert_eq!(name, "cutoff");
            assert_eq!(expected, nrc::BaseType::Int);
        }
        other => panic!("expected MissingParam, got {:?}", other),
    }
    assert!(err.to_string().contains("execute_bound"), "got: {}", err);
}

#[test]
fn unknown_binding_names_list_the_declared_parameters() {
    let session = Shredder::over(small_db()).unwrap();
    let prepared = session.prepare(&parameterized_nested_query()).unwrap();
    let err = session
        .execute_bound(
            &prepared,
            &Params::new()
                .bind("dpt", "dept_00000")
                .bind("cutoff", 1i64)
                .bind("typo", 1i64),
        )
        .unwrap_err();
    match &err {
        ShredError::UnknownParam { name, declared } => {
            assert_eq!(name, "typo");
            assert!(declared.contains(&"dpt".to_string()));
            assert!(declared.contains(&"cutoff".to_string()));
        }
        other => panic!("expected UnknownParam, got {:?}", other),
    }
}

#[test]
fn mistyped_bindings_are_rejected_before_execution() {
    let session = Shredder::over(small_db()).unwrap();
    let prepared = session.prepare(&parameterized_nested_query()).unwrap();
    let err = session
        .execute_bound(
            &prepared,
            &Params::new()
                .bind("dpt", "dept_00000")
                .bind("cutoff", "ten"),
        )
        .unwrap_err();
    match &err {
        ShredError::ParamTypeMismatch { name, .. } => assert_eq!(name, "cutoff"),
        other => panic!("expected ParamTypeMismatch, got {:?}", other),
    }
}

#[test]
fn parameters_eliminated_by_normalisation_stay_declared_and_bindable() {
    let session = Shredder::over(small_db()).unwrap();
    // β-reduction drops ?unused from the normal form, but the source term
    // declares it: binding it must be accepted (and ignored), not rejected.
    let q = app(
        lam(
            "x",
            for_in(
                "e",
                table("employees"),
                singleton(project(var("e"), "name")),
            ),
        ),
        int_param("unused"),
    );
    let prepared = session.prepare(&q).unwrap();
    assert_eq!(prepared.params().len(), 1);
    let bound = session
        .execute_bound(&prepared, &Params::new().bind("unused", 1i64))
        .unwrap();
    let reference = session
        .oracle_bound(&q, &Params::new().bind("unused", 1i64))
        .unwrap();
    assert!(bound.multiset_eq(&reference));
}

#[test]
fn conflicting_parameter_declarations_fail_at_prepare_time() {
    let session = Shredder::over(small_db()).unwrap();
    // ?x declared Int in one place and String in another.
    let q = for_where(
        "e",
        table("employees"),
        and(
            gt(project(var("e"), "salary"), int_param("x")),
            eq(project(var("e"), "dept"), string_param("x")),
        ),
        singleton(project(var("e"), "name")),
    );
    assert!(matches!(
        session.prepare(&q),
        Err(ShredError::ParamTypeMismatch { .. })
    ));
}

// ---------------------------------------------------------------------------
// Edge-value and NULL bindings
// ---------------------------------------------------------------------------

#[test]
fn edge_value_bindings_round_trip_through_the_whole_pipeline() {
    let session = Shredder::over(small_db()).unwrap();
    // Project the bound value straight through the SQL pipeline.
    let q = for_in(
        "e",
        table("employees"),
        singleton(record(vec![
            ("tag", string_param("tag")),
            ("n", int_param("n")),
        ])),
    );
    let prepared = session.prepare(&q).unwrap();
    for (tag, n) in [
        ("", 0i64),
        ("it's quoted", i64::MAX),
        ("unicode λ⊎", i64::MIN),
        (":not_a_param", -1),
    ] {
        let params = Params::new().bind("tag", tag).bind("n", n);
        let bound = session.execute_bound(&prepared, &params).unwrap();
        let reference = session.oracle_bound(&q, &params).unwrap();
        assert!(bound.multiset_eq(&reference), "({:?}, {})", tag, n);
        let first = &bound.as_bag().unwrap()[0];
        assert_eq!(first.field("tag"), Some(&Value::string(tag)));
        assert_eq!(first.field("n"), Some(&Value::Int(n)));
    }
}

#[test]
fn null_bindings_at_the_engine_level_compare_as_unknown() {
    use sqlengine::{ColumnType, Engine, Expr, ParamValues, Select, SqlValue, Storage, TableDef};
    let mut storage = Storage::new();
    storage
        .create_table(TableDef::new("t", vec![("a", ColumnType::Int)]))
        .unwrap();
    storage.insert("t", vec![SqlValue::Int(1)]).unwrap();
    storage.insert("t", vec![SqlValue::Null]).unwrap();
    let engine = Engine::with_storage(storage);
    let q = sqlengine::Query::select(
        Select::new()
            .item(Expr::col("t", "a"), "a")
            .from_named("t", "t")
            .filter(Expr::eq(Expr::col("t", "a"), Expr::param("p"))),
    );
    let plan = engine.prepare(&q).unwrap();
    assert_eq!(plan.params(), vec!["p".to_string()]);
    // A NULL binding matches nothing (SQL three-valued comparison).
    let mut params = ParamValues::new();
    params.insert("p".to_string(), SqlValue::Null);
    assert_eq!(engine.execute_plan_bound(&plan, &params).unwrap().len(), 0);
    // A concrete binding matches its row; the same plan is reused.
    params.insert("p".to_string(), SqlValue::Int(1));
    assert_eq!(engine.execute_plan_bound(&plan, &params).unwrap().len(), 1);
    // Executing with no binding at all is a typed engine error.
    let err = engine.execute_plan(&plan).unwrap_err();
    assert!(matches!(err, sqlengine::EngineError::UnboundParameter(_)));
    // The interpreter agrees with the vectorized executor on bound params.
    params.insert("p".to_string(), SqlValue::Int(1));
    let interpreted = engine.execute_interpreted_bound(&q, &params).unwrap();
    assert_eq!(
        interpreted,
        engine
            .execute_plan_bound(&plan, &params)
            .unwrap()
            .into_result_set()
    );
}

#[test]
fn printed_parameterized_sql_round_trips_through_the_parser() {
    let session = Shredder::builder()
        .schema(organisation_schema())
        .build()
        .unwrap();
    let prepared = session.prepare(&parameterized_nested_query()).unwrap();
    let texts = prepared.sql_texts();
    assert!(!texts.is_empty());
    let mut saw_placeholder = false;
    for sql in texts {
        if sql.contains(":dpt") || sql.contains(":cutoff") {
            saw_placeholder = true;
        }
        let parsed = sqlengine::parse_query(&sql).unwrap();
        assert_eq!(sqlengine::print_query(&parsed), sql);
    }
    assert!(
        saw_placeholder,
        "generated SQL must carry named placeholders"
    );
}
