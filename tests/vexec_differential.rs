//! Differential tests of the vectorized executor against the row-at-a-time
//! interpreter: for every SQL stage the shredding pipeline emits for the
//! paper's full benchmark suite (QF1–QF6 and Q1–Q6), the pre-compiled
//! physical plan, the ad-hoc vectorized path and the interpreter must produce
//! the same bag of rows — and the stitched nested values must agree with the
//! oracle under every indexing scheme.

use query_shredding::prelude::*;
use query_shredding::shredding::pipeline;
use query_shredding::sqlengine::value::compare_rows;
use query_shredding::sqlengine::{ResultSet, Row};

fn small_db() -> Database {
    generate(&OrgConfig {
        departments: 4,
        employees_per_department: 6,
        contacts_per_department: 3,
        seed: 7,
        ..OrgConfig::default()
    })
}

fn all_benchmark_queries() -> Vec<(&'static str, nrc::Term)> {
    let mut queries = datagen::queries::flat_queries();
    queries.extend(datagen::queries::nested_queries());
    queries
}

/// SQL leaves row order unspecified without a top-level `ORDER BY`, and the
/// planner may pick a different hash-join build side than the interpreter's
/// fixed choice — so result sets are compared as bags: same columns, same
/// rows up to reordering.
fn sorted_rows(rs: &ResultSet) -> Vec<Row> {
    let mut rows = rs.rows.clone();
    rows.sort_by(|a, b| compare_rows(a, b));
    rows
}

fn assert_same_bag(name: &str, stage: usize, interpreted: &ResultSet, vectorized: &ResultSet) {
    assert_eq!(
        interpreted.columns, vectorized.columns,
        "{} stage {}: column mismatch",
        name, stage
    );
    assert_eq!(
        sorted_rows(interpreted),
        sorted_rows(vectorized),
        "{} stage {}: row bag mismatch",
        name,
        stage
    );
}

/// Every stage of every benchmark query: interpreter vs. the stage's
/// pre-compiled plan vs. planning from live storage (which may choose
/// different build sides based on real cardinalities).
#[test]
fn vectorized_executor_matches_the_interpreter_on_every_benchmark_stage() {
    let schema = organisation_schema();
    let engine = pipeline::engine_from_database(&small_db()).unwrap();
    for (name, q) in all_benchmark_queries() {
        let compiled = pipeline::compile(&q, &schema).unwrap();
        for (i, stage) in compiled.stages.annotations().into_iter().enumerate() {
            let interpreted = engine.execute_interpreted(&stage.sql).unwrap();
            let via_stage_plan = engine.execute_plan(&stage.plan).unwrap().into_result_set();
            assert_same_bag(name, i, &interpreted, &via_stage_plan);
            // Re-planning against live storage (known cardinalities) must
            // agree as well, even where the build-side choice differs.
            let via_engine_plan = engine.execute(&stage.sql).unwrap().into_result_set();
            assert_same_bag(name, i, &interpreted, &via_engine_plan);
        }
    }
}

/// The full nested pipeline over the vectorized executor agrees with the
/// nested reference semantics under all three indexing schemes.
#[test]
fn the_vectorized_default_backend_agrees_with_the_oracle_under_every_scheme() {
    let db = small_db();
    for scheme in IndexScheme::ALL {
        let session = Shredder::builder()
            .database(db.clone())
            .index_scheme(scheme)
            .build()
            .unwrap();
        for (name, q) in all_benchmark_queries() {
            let reference = session.oracle(&q).unwrap();
            let value = session.run(&q).unwrap();
            assert!(
                value.multiset_eq(&reference),
                "{} via the vectorized sqlengine backend under {} indexes",
                name,
                scheme
            );
        }
    }
}

/// The loop-lifting baseline's SQL — `ROW_NUMBER` over unreduced products —
/// also executes correctly on the vectorized engine (it is the engine's
/// default path for every backend).
#[test]
fn loop_lifting_sql_runs_correctly_on_the_vectorized_engine() {
    let db = small_db();
    let session = Shredder::builder()
        .database(db)
        .backend(Box::new(LoopLiftBackend))
        .build()
        .unwrap();
    for (name, q) in datagen::queries::nested_queries() {
        let reference = session.oracle(&q).unwrap();
        let value = session.run(&q).unwrap();
        assert!(value.multiset_eq(&reference), "{} via looplift", name);
    }
}
